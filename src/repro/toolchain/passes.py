"""The code-generation pass pipeline.

The RECORD backend is a fixed sequence of phases -- IR optimization, code
selection, list scheduling, spill insertion, compaction, instruction
encoding.  This module makes each phase a named :class:`Pass` over a
:class:`CompilationState`, ordered by a :class:`PassManager`, configured
by a :class:`PipelineConfig`.  The four raw booleans of the legacy
:class:`repro.record.compiler.CompilerOptions` map 1:1 onto configs (see
:meth:`PipelineConfig.from_options`), and the ablation experiments of the
paper are available as named presets (:data:`PRESETS`), extended with
``no-opt`` (selection on raw lowered trees, the pre-optimizer pipeline).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

from repro.codegen.compaction import InstructionWord, compact, compact_blocks
from repro.codegen.schedule import schedule_instances
from repro.codegen.selection import (
    BlockCode,
    RTInstance,
    StatementCode,
    is_multi_block,
    select_statement,
    select_terminator,
)
from repro.codegen.spill import insert_spills
from repro.diagnostics import (
    Diagnostic,
    InternalCompilerError,
    PipelineError,
    ReproError,
)
from repro.ir.binding import ResourceBinding
from repro.ir.program import Program
from repro.obs.trace import current_tracer
from repro.opt.pipeline import OptPipeline, OptStats
from repro.selector.burs import CodeSelector


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def _verify_default() -> bool:
    """Default of ``PipelineConfig.verify``: the ``REPRO_VERIFY``
    environment variable (the CI test suites compile with the static
    verifier enabled throughout; interactive use opts in per run)."""
    return os.environ.get("REPRO_VERIFY", "").strip().lower() in ("1", "true", "on", "yes")


@dataclass(frozen=True)
class PipelineConfig:
    """Declarative description of one backend pipeline.

    ``allow_chained`` and ``use_expanded_templates`` restrict the *grammar*
    the selector uses; ``use_optimizer`` toggles the IR optimizer ahead of
    selection; ``use_scheduling`` / ``use_compaction`` toggle the
    corresponding passes; ``encode`` appends the binary instruction
    encoder.  Frozen (hashable) so configs can key selector caches and
    session pools; the serialized form (``to_dict``) carries the optimizer
    knob, so result hashes/artifacts distinguish optimized compiles
    independently of the (purely target-side) retarget cache.
    """

    allow_chained: bool = True
    use_expanded_templates: bool = True
    use_scheduling: bool = True
    use_compaction: bool = True
    encode: bool = False
    use_optimizer: bool = True
    # Run the static pipeline verifier (repro.analysis.verify) around
    # every pass; not a pass itself (pass_names() is unchanged), its cost
    # is reported separately as CompileMetrics.verify_time_s.
    verify: bool = field(default_factory=_verify_default)

    def pass_names(self) -> List[str]:
        names = []
        if self.use_optimizer:
            names.append("opt")
        names.append("select")
        if self.use_scheduling:
            names.append("schedule")
        names.append("spill")
        names.append("compact")
        if self.encode:
            names.append("encode")
        return names

    def selector_key(self) -> tuple:
        """The part of the config that decides which grammar/selector is
        needed (restricted-selector cache key)."""
        return (self.allow_chained, self.use_expanded_templates)

    def with_updates(self, **changes) -> "PipelineConfig":
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, bool]:
        """The config as a plain dict (the serialized form used by
        :meth:`repro.toolchain.results.CompilationResult.to_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, bool]) -> "PipelineConfig":
        return cls(**data)

    @classmethod
    def preset(cls, name: str) -> "PipelineConfig":
        """One of the named ablation presets (see :data:`PRESETS`)."""
        try:
            return PRESETS[name]
        except KeyError:
            raise PipelineError(
                "unknown pipeline preset %r; available presets: %s"
                % (name, ", ".join(sorted(PRESETS)))
            ) from None

    @classmethod
    def from_options(cls, options) -> "PipelineConfig":
        """Bridge from the legacy :class:`CompilerOptions`."""
        return cls(
            allow_chained=options.allow_chained,
            use_expanded_templates=options.use_expanded_templates,
            use_scheduling=options.use_scheduling,
            use_compaction=options.use_compaction,
        )

    def to_options(self):
        """Bridge to the legacy :class:`CompilerOptions`."""
        from repro.record.compiler import CompilerOptions

        return CompilerOptions(
            allow_chained=self.allow_chained,
            use_expanded_templates=self.use_expanded_templates,
            use_scheduling=self.use_scheduling,
            use_compaction=self.use_compaction,
        )


#: The ablation presets of the paper's experiments (section 4): ``full``
#: is the complete RECORD flow, ``conventional`` the baseline compiler of
#: figure 2, and each ``no-*`` preset disables exactly one mechanism
#: (``no-opt`` hands raw lowered trees straight to the selector, the
#: pre-optimizer pipeline).
PRESETS: Dict[str, PipelineConfig] = {
    "full": PipelineConfig(),
    "no-chained": PipelineConfig(allow_chained=False),
    "no-expansion": PipelineConfig(use_expanded_templates=False),
    "no-scheduling": PipelineConfig(use_scheduling=False),
    "no-compaction": PipelineConfig(use_compaction=False),
    "no-opt": PipelineConfig(use_optimizer=False),
    "conventional": PipelineConfig(
        allow_chained=False,
        use_expanded_templates=False,
        use_scheduling=False,
        use_compaction=False,
    ),
}


# ---------------------------------------------------------------------------
# State threaded through the passes
# ---------------------------------------------------------------------------


@dataclass
class PassContext:
    """Target-side inputs of a pipeline run (fixed across statements)."""

    selector: CodeSelector
    binding: ResourceBinding
    spill_storage: str
    netlist: object = None
    config: PipelineConfig = field(default_factory=PipelineConfig)
    # True when the target has a dedicated repeat counter: the selection
    # pass lowers annotated counted latches (``Program.hw_loops``) to
    # zero-overhead ``repeat`` instances instead of ``cbranch``.
    hardware_loops: bool = False


@dataclass
class CompilationState:
    """Mutable program-side state owned by one pipeline run.

    Passes own every object in here -- :class:`SelectionPass` copies the
    selector's output instead of aliasing it, so later passes may rebind
    freely without corrupting cached selection results.

    ``pass_timings`` maps pass name to wall-clock seconds (filled in by
    :meth:`PassManager.run`, in pipeline order); ``diagnostics`` collects
    structured non-fatal messages emitted by passes.  Both flow into the
    :class:`~repro.toolchain.results.CompilationResult`.
    """

    program: Program
    statement_codes: List[StatementCode] = field(default_factory=list)
    # Per-block view of the same StatementCode objects (plus the branch
    # pseudo-code at every block end); the CFG structure the simulator
    # and the compactor work from.
    block_codes: List[BlockCode] = field(default_factory=list)
    words: List[InstructionWord] = field(default_factory=list)
    encoding: Optional[str] = None
    pass_timings: Dict[str, float] = field(default_factory=dict)
    diagnostics: List["Diagnostic"] = field(default_factory=list)
    # Labeller statistics of this run's selection pass (nodes labelled,
    # memo hits/misses, table provenance); flows into CompileMetrics.
    selection_stats: Dict[str, float] = field(default_factory=dict)
    # Statistics of this run's IR optimization pass (None when the
    # optimizer did not run); flows into CompileMetrics as well.
    opt_stats: Optional[OptStats] = None
    # Static-verifier accounting (PipelineConfig.verify): wall-clock
    # seconds spent checking and the number of check batches run.  Kept
    # out of pass_timings -- the verifier is not a pass.
    verify_time_s: float = 0.0
    verify_checks: int = 0

    def add_diagnostic(
        self, severity: str, message: str, phase: str = ""
    ) -> None:
        self.diagnostics.append(
            Diagnostic(severity=severity, message=message, phase=phase)
        )

    def all_instances(self) -> List[RTInstance]:
        instances: List[RTInstance] = []
        for code in self.statement_codes:
            instances.extend(code.instances)
        return instances


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class Pass:
    """One named phase of the backend pipeline.

    Subclasses set :attr:`name` and implement :meth:`run`, mutating the
    :class:`CompilationState` in place.
    """

    name: str = "pass"

    def run(self, state: CompilationState, context: PassContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s %r>" % (type(self).__name__, self.name)


def introducible_ops(grammar) -> set:
    """Operator signatures the optimizer may *introduce* on this target.

    Operator presence in the terminal vocabulary is not enough: target
    grammars frequently support a shifter only with hard-wired amounts
    (e.g. ``shl(x, Const(1))`` from an ``x + x`` datapath), so a
    ``mul x 8 -> shl x 3`` rewrite would make a coverable tree
    uncoverable.  This scans the RT rule patterns and returns precise
    signatures: ``"shl"`` when the shift amount is an arbitrary constant
    operand, ``"shl:1"`` when only the amount 1 is hard-wired.
    """
    from repro.grammar.grammar import PatTerm

    signatures = set()
    for rule in grammar.rules:
        pattern = rule.pattern
        if not isinstance(pattern, PatTerm) or pattern.name not in ("shl", "shr"):
            continue
        if len(pattern.operands) != 2:
            continue
        amount = pattern.operands[1]
        if isinstance(amount, PatTerm) and amount.name == "Const":
            if amount.value is None:
                signatures.add(pattern.name)
            else:
                signatures.add("%s:%d" % (pattern.name, amount.value))
    return signatures


class OptimizationPass(Pass):
    """IR optimization ahead of selection: constant folding, algebraic
    rewriting, cross-statement CSE and dead-temporary elimination.

    Replaces ``state.program`` with a *fresh* optimized program (the
    optimizer guarantees no statement/expression aliasing with the
    input).  The rewrite itself is target-independent; the target's
    grammar only *gates* operator-introducing strength reductions (see
    :func:`introducible_ops`), so a ``mul x 2`` never becomes a shift
    the processor cannot execute.
    """

    name = "opt"

    def __init__(self, pipeline: Optional[OptPipeline] = None):
        self.pipeline = pipeline if pipeline is not None else OptPipeline()

    def run(self, state: CompilationState, context: PassContext) -> None:
        supported_ops = None
        selector = context.selector
        if selector is not None:
            supported_ops = introducible_ops(selector.grammar)
        program, stats = self.pipeline.run(
            state.program, supported_ops=supported_ops
        )
        state.program = program
        state.opt_stats = stats


class SelectionPass(Pass):
    """Optimal BURS cover of every statement.

    Produces *fresh* :class:`StatementCode` objects: the instance list
    returned by the selector is copied, never aliased, so a shared or
    cached selection result survives downstream rewriting.
    """

    name = "select"

    def run(self, state: CompilationState, context: PassContext) -> None:
        selector = context.selector
        hits_before = selector.memo_hits
        misses_before = selector.memo_misses
        labelled_before = selector.nodes_labelled
        reachable = state.program.reachable_blocks()
        if len(reachable) < len(state.program.blocks):
            dropped = [
                block.name
                for block in state.program.blocks
                if all(block is not kept for kept in reachable)
            ]
            state.add_diagnostic(
                "warning",
                "unreachable block(s) not selected: %s" % ", ".join(dropped),
                phase=self.name,
            )
        tracer = current_tracer()
        for block in reachable:
            with tracer.span(
                "select:block", block=block.name, statements=len(block.statements)
            ):
                block_statement_codes: List[StatementCode] = []
                for statement in block.statements:
                    code = select_statement(statement, selector, context.binding)
                    block_statement_codes.append(
                        StatementCode(
                            statement=code.statement,
                            cost=code.cost,
                            instances=list(code.instances),
                        )
                    )
                hardware_loop = (
                    state.program.hw_loops.get(block.name)
                    if context.hardware_loops
                    else None
                )
                terminator_code = (
                    None
                    if block.terminator is None
                    else select_terminator(
                        block.terminator, block.name, hardware_loop
                    )
                )
                block_code = BlockCode(
                    name=block.name,
                    codes=block_statement_codes,
                    terminator_code=terminator_code,
                )
                state.block_codes.append(block_code)
                # Flat view (same StatementCode objects): what the schedule,
                # spill and metric layers iterate.
                state.statement_codes.extend(block_code.all_codes())
        # Per-run deltas of the (possibly shared) selector's counters;
        # approximate under concurrent compiles against one pooled session,
        # exact otherwise.
        hits = selector.memo_hits - hits_before
        misses = selector.memo_misses - misses_before
        lookups = hits + misses
        state.selection_stats = {
            "matcher": selector.matcher,
            "nodes_labelled": selector.nodes_labelled - labelled_before,
            "memo_hits": hits,
            "memo_misses": misses,
            "memo_hit_rate": (hits / lookups) if lookups else 0.0,
            "tables_build_time_s": selector.tables.build_time_s,
        }


class SchedulingPass(Pass):
    """Clobber-avoiding list scheduling within each statement."""

    name = "schedule"

    def run(self, state: CompilationState, context: PassContext) -> None:
        if state.block_codes:
            # Per-block walk over the same StatementCode objects the
            # flat list aliases (all_codes() includes the terminator
            # pseudo-code), so scheduling is identical to the flat loop
            # but attributable per block in a trace.
            tracer = current_tracer()
            for block_code in state.block_codes:
                with tracer.span("schedule:block", block=block_code.name):
                    for code in block_code.all_codes():
                        code.instances = schedule_instances(code.instances)
            return
        for code in state.statement_codes:
            code.instances = schedule_instances(code.instances)


class SpillPass(Pass):
    """Insert spill stores/reloads where storage pressure demands them."""

    name = "spill"

    def run(self, state: CompilationState, context: PassContext) -> None:
        before = len(state.all_instances())
        for code in state.statement_codes:
            code.instances = insert_spills(code.instances, context.spill_storage)
        inserted = len(state.all_instances()) - before
        if inserted:
            state.add_diagnostic(
                "warning",
                "storage pressure: %d spill transfer(s) inserted (spill storage %s)"
                % (inserted, context.spill_storage),
                phase=self.name,
            )


class CompactionPass(Pass):
    """Pack independent RTs into horizontal instruction words.

    Always produces ``state.words``; with ``enabled=False`` each RT gets
    its own word (the uncompacted baseline).
    """

    name = "compact"

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def run(self, state: CompilationState, context: PassContext) -> None:
        if is_multi_block(state.block_codes):
            # Multi-block program: per-block packing, labelled words.
            # compact_blocks never packs across a block boundary, so
            # feeding it one block at a time is result-identical and
            # gives each block its own trace span.
            tracer = current_tracer()
            words: List[InstructionWord] = []
            for block_code in state.block_codes:
                with tracer.span("compact:block", block=block_code.name) as span:
                    block_words = compact_blocks([block_code], enabled=self.enabled)
                    if tracer.enabled:
                        span.set(words=len(block_words))
                words.extend(block_words)
            state.words = words
        else:
            state.words = compact(state.all_instances(), enabled=self.enabled)


class EncodingPass(Pass):
    """Render the binary instruction encoding of the compacted words."""

    name = "encode"

    def run(self, state: CompilationState, context: PassContext) -> None:
        from repro.codegen.encoding import InstructionEncoder

        if context.netlist is None:
            raise PipelineError("encoding pass needs the target netlist in the context")
        state.encoding = InstructionEncoder(context.netlist).listing(state.words)


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


def _pass_span_attributes(name: str, state: CompilationState) -> Dict[str, object]:
    """Per-pass trace attributes, drawn from the numbers the pipeline
    already tracks for :class:`~repro.toolchain.results.CompileMetrics`."""
    if name == "select":
        stats = state.selection_stats or {}
        return {
            "nodes_labelled": int(stats.get("nodes_labelled", 0)),
            "memo_hit_rate": round(float(stats.get("memo_hit_rate", 0.0)), 4),
            "blocks": len(state.block_codes),
        }
    if name == "opt":
        stats = state.opt_stats
        if stats is None:
            return {}
        return {
            "folds": stats.folds + stats.algebraic,
            "cse_hits": stats.cse_hits,
            "nodes_before": stats.nodes_before,
            "nodes_after": stats.nodes_after,
        }
    if name == "compact":
        return {"words": len(state.words)}
    if name in ("schedule", "spill"):
        return {
            "operations": sum(
                len(code.instances) for code in state.statement_codes
            )
        }
    if name == "encode":
        return {"encoded": state.encoding is not None}
    return {}


class PassManager:
    """An ordered, editable pipeline of :class:`Pass` objects."""

    def __init__(self, passes: List[Pass]):
        self.passes = list(passes)

    @classmethod
    def from_config(cls, config: PipelineConfig) -> "PassManager":
        passes: List[Pass] = []
        if config.use_optimizer:
            passes.append(OptimizationPass())
        passes.append(SelectionPass())
        if config.use_scheduling:
            passes.append(SchedulingPass())
        passes.append(SpillPass())
        passes.append(CompactionPass(enabled=config.use_compaction))
        if config.encode:
            passes.append(EncodingPass())
        return cls(passes)

    def names(self) -> List[str]:
        return [p.name for p in self.passes]

    def _index_of(self, name: str) -> int:
        for index, p in enumerate(self.passes):
            if p.name == name:
                return index
        raise PipelineError(
            "no pass named %r in pipeline [%s]" % (name, ", ".join(self.names()))
        )

    def insert_after(self, name: str, new_pass: Pass) -> None:
        self.passes.insert(self._index_of(name) + 1, new_pass)

    def insert_before(self, name: str, new_pass: Pass) -> None:
        self.passes.insert(self._index_of(name), new_pass)

    def remove(self, name: str) -> Pass:
        return self.passes.pop(self._index_of(name))

    def run(self, program: Program, context: PassContext) -> CompilationState:
        """Run every pass in order, recording per-pass wall-clock time.

        Timings land in ``state.pass_timings`` keyed by pass name, in
        pipeline order (two passes sharing a name accumulate into one
        entry) -- the compile-side analogue of the per-phase retargeting
        times of table 3.

        This is the pipeline's internal-error boundary: a structured
        :class:`ReproError` raised by a pass (invalid input, resource
        ceiling, uncoverable statement) propagates untouched, but any
        *unexpected* exception is wrapped into an
        :class:`InternalCompilerError` naming the failing pass and the
        program being compiled, with a truncated traceback -- a compiler
        bug must surface as a diagnostic, never a raw traceback.
        """
        state = CompilationState(program=program)
        verifier = None
        if context.config.verify:
            from repro.analysis.verify import PipelineVerifier

            verifier = PipelineVerifier()
        inject = os.environ.get("REPRO_INJECT_FAULT", "")
        tracer = current_tracer()
        for p in self.passes:
            if verifier is not None:
                checked = time.perf_counter()
                with tracer.span("verify:%s" % p.name, stage="before"):
                    verifier.before_pass(p.name, state, context)
                state.verify_time_s += time.perf_counter() - checked
            started = time.perf_counter()
            try:
                with tracer.span("pass:%s" % p.name) as span:
                    if inject and inject == p.name:
                        raise RuntimeError(
                            "injected fault in pass %r (REPRO_INJECT_FAULT)" % p.name
                        )
                    p.run(state, context)
                    if tracer.enabled:
                        span.set(
                            program=program.name,
                            **_pass_span_attributes(p.name, state),
                        )
            except (ReproError, KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                raise InternalCompilerError.wrap(
                    error,
                    pass_name=p.name,
                    context="program %r" % program.name,
                ) from error
            elapsed = time.perf_counter() - started
            state.pass_timings[p.name] = state.pass_timings.get(p.name, 0.0) + elapsed
            if verifier is not None:
                checked = time.perf_counter()
                with tracer.span("verify:%s" % p.name, stage="after") as span:
                    verifier.after_pass(p.name, state, context)
                    if tracer.enabled:
                        span.set(checks=verifier.checks_run)
                state.verify_time_s += time.perf_counter() - checked
                state.verify_checks = verifier.checks_run
        return state

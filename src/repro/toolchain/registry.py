"""The target registry: one uniform namespace for processor models.

Historically the built-in targets lived in a hard-coded dict in
``repro.targets.library`` and the CLI string-dispatched between built-in
names and HDL file paths.  The registry replaces both: built-in models,
user HDL files and programmatically constructed models all register the
same way and are looked up by name through one interface.

Registration styles::

    from repro.toolchain import REGISTRY, register_target

    # 1. decorator over a function returning HDL source
    @register_target("mychip", category="custom", description="my ASIP")
    def _mychip():
        return MY_HDL_SOURCE

    # 2. direct registration of HDL text
    REGISTRY.register_hdl("otherchip", hdl_source, category="custom")

    # 3. an HDL file on disk
    REGISTRY.register_file("designs/quirk.hdl")

Third-party packages can also expose targets through the
``repro.targets`` entry-point group; :meth:`TargetRegistry.load_entry_points`
picks them up when ``importlib.metadata`` is available.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.diagnostics import TargetError


@dataclass(frozen=True)
class TargetSpec:
    """Metadata of one registered target processor."""

    name: str
    hdl_source: str
    description: str = ""
    category: str = "unregistered"
    # The storage resource in which program variables live by default.
    default_variable_storage: Optional[str] = "DMEM"
    # Variables that should live in registers/ports instead of memory may be
    # listed here per experiment; empty by default.
    binding_overrides: Dict[str, str] = field(default_factory=dict)
    # True when the processor has a dedicated repeat counter
    # (TMS320C25 ``RPT``/``RPTK``): counted latch branches lower to
    # zero-overhead ``repeat`` instances instead of ``cbranch``.
    hardware_loops: bool = False
    # Origin of the registration ("builtin", "file", "user", "entry-point").
    origin: str = "user"


class TargetRegistry:
    """A named collection of :class:`TargetSpec` objects.

    Behaves like a read-only mapping from target name to spec; iteration
    order is registration order (for the built-ins: the order of table 3
    of the paper).
    """

    def __init__(self):
        self._specs: Dict[str, TargetSpec] = {}
        self._order: List[str] = []
        self._entry_points_loaded = False

    # -- registration ------------------------------------------------------------

    def register(self, spec: TargetSpec, replace: bool = False) -> TargetSpec:
        """Register a fully built :class:`TargetSpec`."""
        if not spec.name:
            raise TargetError("target name must be non-empty")
        if spec.name in self._specs and not replace:
            raise TargetError(
                "target %r is already registered; pass replace=True to override"
                % spec.name
            )
        if spec.name not in self._specs:
            self._order.append(spec.name)
        self._specs[spec.name] = spec
        return spec

    def register_hdl(
        self,
        name: str,
        hdl_source: str,
        description: str = "",
        category: str = "user",
        replace: bool = False,
        **extra,
    ) -> TargetSpec:
        """Register raw HDL text under a name."""
        spec = TargetSpec(
            name=name,
            hdl_source=hdl_source,
            description=description,
            category=category,
            **extra,
        )
        return self.register(spec, replace=replace)

    def register_file(
        self, path: str, name: Optional[str] = None, replace: bool = False
    ) -> TargetSpec:
        """Register an HDL file; the target name defaults to the file stem."""
        if not os.path.exists(path):
            raise TargetError("HDL file %r does not exist" % path)
        with open(path, "r") as handle:
            hdl_source = handle.read()
        target_name = name or os.path.splitext(os.path.basename(path))[0]
        return self.register_hdl(
            target_name,
            hdl_source,
            description="HDL model from %s" % path,
            category="file",
            replace=replace,
            origin="file",
        )

    def target(
        self,
        name: str,
        description: str = "",
        category: str = "user",
        replace: bool = False,
        **extra,
    ) -> Callable:
        """Decorator: register a function returning HDL source (or a string
        attribute-holding module) as a target."""

        def decorate(source_factory):
            hdl_source = source_factory() if callable(source_factory) else source_factory
            self.register_hdl(
                name,
                hdl_source,
                description=description or (source_factory.__doc__ or "").strip(),
                category=category,
                replace=replace,
                **extra,
            )
            return source_factory

        return decorate

    def load_entry_points(self, group: str = "repro.targets") -> int:
        """Register targets advertised by installed packages.

        Each entry point must resolve to a :class:`TargetSpec`, an HDL
        string, or a zero-argument callable returning either.  Returns the
        number of targets registered; silently does nothing when
        ``importlib.metadata`` is unavailable.
        """
        if self._entry_points_loaded:
            return 0
        self._entry_points_loaded = True
        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - python < 3.8
            return 0
        try:
            selected = entry_points(group=group)
        except TypeError:  # pragma: no cover - python < 3.10 API
            selected = entry_points().get(group, [])
        count = 0
        for entry in selected:
            loaded = entry.load()
            if callable(loaded) and not isinstance(loaded, TargetSpec):
                loaded = loaded()
            if isinstance(loaded, TargetSpec):
                self.register(loaded, replace=True)
            else:
                self.register_hdl(
                    entry.name, str(loaded), category="entry-point",
                    replace=True, origin="entry-point",
                )
            count += 1
        return count

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> TargetSpec:
        """The spec registered under ``name`` (raises :class:`TargetError`)."""
        try:
            return self._specs[name]
        except KeyError:
            raise TargetError(
                "unknown target %r; registered targets: %s"
                % (name, ", ".join(self._order) or "(none)")
            ) from None

    def resolve(self, target: str) -> TargetSpec:
        """A registered name *or* a path to an HDL file.

        File paths are loaded ad hoc without being added to the registry,
        mirroring the CLI's historical behaviour.
        """
        if target in self._specs:
            return self._specs[target]
        if os.path.exists(target):
            with open(target, "r") as handle:
                hdl_source = handle.read()
            stem = os.path.splitext(os.path.basename(target))[0]
            return TargetSpec(
                name=stem,
                hdl_source=hdl_source,
                description="HDL model from %s" % target,
                category="file",
                origin="file",
            )
        raise TargetError(
            "%r is neither a registered target (%s) nor an HDL file"
            % (target, ", ".join(self._order) or "none registered")
        )

    def hdl_source(self, name: str) -> str:
        return self.get(name).hdl_source

    def names(self) -> List[str]:
        return list(self._order)

    def specs(self) -> List[TargetSpec]:
        return [self._specs[name] for name in self._order]

    # -- mapping protocol --------------------------------------------------------

    def __getitem__(self, name: str) -> TargetSpec:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._specs)


# ---------------------------------------------------------------------------
# The default registry with the six built-in models of the paper
# ---------------------------------------------------------------------------

REGISTRY = TargetRegistry()

_BUILTINS_LOADED = False

# Model-module name, description, category -- the order is table 3's.
_BUILTIN_MODELS = [
    ("demo", "Small single-accumulator example machine with ALU and multiplier",
     "simple example"),
    ("ref", "Reference machine: 4 registers, MAC unit, horizontal instruction word",
     "simple example"),
    ("manocpu", "Mano's basic computer (educational accumulator machine)",
     "educational"),
    ("tanenbaum", "Tanenbaum's Mac-1 (educational accumulator/stack machine)",
     "educational"),
    ("bass_boost", "Industrial-style audio filter ASIP with a single MAC path",
     "industrial ASIP"),
    ("tms320c25", "TMS320C25-style fixed-point DSP (heterogeneous registers, MAC)",
     "standard DSP"),
]


def _ensure_builtins() -> None:
    """Register the built-in models on first use.

    Import happens lazily (inside this function) because
    ``repro.targets.models`` sits under ``repro.targets``, whose
    ``__init__`` imports back into this module.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import importlib

    for name, description, category in _BUILTIN_MODELS:
        module = importlib.import_module("repro.targets.models.%s" % name)
        REGISTRY.register(
            TargetSpec(
                name=name,
                hdl_source=module.HDL_SOURCE,
                description=description,
                category=category,
                hardware_loops=getattr(module, "HARDWARE_LOOPS", False),
                origin="builtin",
            ),
            replace=True,
        )
    REGISTRY.load_entry_points()


def default_registry() -> TargetRegistry:
    """The process-wide registry, with built-in targets loaded."""
    _ensure_builtins()
    return REGISTRY


def register_target(name: str, **kwargs) -> Callable:
    """Module-level decorator registering into the default registry."""
    return default_registry().target(name, **kwargs)

"""Structured compilation artifacts: the result side of the toolchain API.

A :class:`CompilationResult` is the immutable record of one pipeline run.
It carries three layers of information:

* **metrics** -- a :class:`CompileMetrics` block with the quantities the
  paper's experiments report (code size, RT operations, spills, selection
  cost) plus per-pass wall-clock timings recorded by
  :class:`~repro.toolchain.passes.PassManager`;
* **views** -- named, human-readable renderings: the instruction
  ``listing``, the binary ``encoding`` (when the encode pass ran) and an
  RT-level ``simulation_trace`` computed through
  :class:`~repro.sim.rtsim.RTSimulator`;
* **artifacts** -- the live IR/backend objects (program, statement codes,
  instruction words, resource binding) for callers that keep processing.

Results serialize losslessly to plain dicts/JSON (:meth:`to_dict` /
:meth:`to_json`) and back (:meth:`from_dict` / :meth:`from_json`).  A
deserialized result is *detached*: every metric, timing, diagnostic and
view survives the round trip, but the live artifacts do not (they are
process-local objects); accessing them raises
:class:`~repro.diagnostics.ResultError`.

The legacy :class:`repro.record.compiler.CompiledProgram` is a deprecated
shim subclass of :class:`CompilationResult`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codegen.compaction import InstructionWord, code_size
from repro.codegen.emitter import format_listing
from repro.codegen.selection import BlockCode, RTInstance, StatementCode, is_control_code
from repro.codegen.spill import count_spills
from repro.diagnostics import Diagnostic, ResultError
from repro.ir.binding import ResourceBinding
from repro.ir.program import Program
from repro.toolchain.passes import CompilationState, PipelineConfig

#: Bump when the dict layout of :meth:`CompilationResult.to_dict` changes.
RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CompileMetrics:
    """The scalar quantities of one compilation (figure-2 metrics plus
    bookkeeping the service layer reports per request).

    The labeller block (``nodes_labelled``, ``label_memo_hit_rate``,
    ``tables_build_time_s``) describes the table-driven BURS matcher:
    how many node states this compile materialized, which fraction came
    out of the structural memo, and how long the offline table generation
    this selector runs on took at retarget time.

    The optimizer block (``opt_nodes_before``, ``opt_nodes_after``,
    ``opt_folds``, ``opt_cse_hits``, ``opt_temps``) summarizes the IR
    optimization pass that ran ahead of selection: IR node counts in/out,
    rewrites applied (constant folds plus algebraic simplifications), CSE
    occurrences served from a temporary, and temporaries materialized.
    The global-optimizer block (``opt_gvn_hits``, ``opt_licm_hoisted``,
    ``opt_strength_reductions``, ``opt_hw_loops``) counts cross-block
    value-numbering hits, loop-invariant statements/temporaries hoisted
    into preheaders, strength-reduced multiplication occurrences, and
    counted loops annotated for hardware-loop codegen.  All zeros when
    the pipeline was configured with ``use_optimizer=False``.
    """

    code_size: int
    operation_count: int
    spill_count: int
    selection_cost: int
    statement_count: int
    compile_time_s: float
    nodes_labelled: int = 0
    label_memo_hit_rate: float = 0.0
    tables_build_time_s: float = 0.0
    opt_nodes_before: int = 0
    opt_nodes_after: int = 0
    opt_folds: int = 0
    opt_cse_hits: int = 0
    opt_temps: int = 0
    opt_gvn_hits: int = 0
    opt_licm_hoisted: int = 0
    opt_strength_reductions: int = 0
    opt_hw_loops: int = 0
    # Static-verifier accounting (zero when PipelineConfig.verify was
    # off); verify time is *not* part of compile_time_s.
    verify_time_s: float = 0.0
    verify_checks: int = 0

    def to_dict(self) -> dict:
        return {
            "code_size": self.code_size,
            "operation_count": self.operation_count,
            "spill_count": self.spill_count,
            "selection_cost": self.selection_cost,
            "statement_count": self.statement_count,
            "compile_time_s": self.compile_time_s,
            "nodes_labelled": self.nodes_labelled,
            "label_memo_hit_rate": self.label_memo_hit_rate,
            "tables_build_time_s": self.tables_build_time_s,
            "opt_nodes_before": self.opt_nodes_before,
            "opt_nodes_after": self.opt_nodes_after,
            "opt_folds": self.opt_folds,
            "opt_cse_hits": self.opt_cse_hits,
            "opt_temps": self.opt_temps,
            "opt_gvn_hits": self.opt_gvn_hits,
            "opt_licm_hoisted": self.opt_licm_hoisted,
            "opt_strength_reductions": self.opt_strength_reductions,
            "opt_hw_loops": self.opt_hw_loops,
            "verify_time_s": self.verify_time_s,
            "verify_checks": self.verify_checks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompileMetrics":
        return cls(
            code_size=data["code_size"],
            operation_count=data["operation_count"],
            spill_count=data["spill_count"],
            selection_cost=data["selection_cost"],
            statement_count=data["statement_count"],
            compile_time_s=data["compile_time_s"],
            nodes_labelled=data.get("nodes_labelled", 0),
            label_memo_hit_rate=data.get("label_memo_hit_rate", 0.0),
            tables_build_time_s=data.get("tables_build_time_s", 0.0),
            opt_nodes_before=data.get("opt_nodes_before", 0),
            opt_nodes_after=data.get("opt_nodes_after", 0),
            opt_folds=data.get("opt_folds", 0),
            opt_cse_hits=data.get("opt_cse_hits", 0),
            opt_temps=data.get("opt_temps", 0),
            opt_gvn_hits=data.get("opt_gvn_hits", 0),
            opt_licm_hoisted=data.get("opt_licm_hoisted", 0),
            opt_strength_reductions=data.get("opt_strength_reductions", 0),
            opt_hw_loops=data.get("opt_hw_loops", 0),
            verify_time_s=data.get("verify_time_s", 0.0),
            verify_checks=data.get("verify_checks", 0),
        )


@dataclass(frozen=True)
class StatementArtifact:
    """Serialized view of the code generated for one source statement."""

    statement: str
    cost: int
    operations: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "statement": self.statement,
            "cost": self.cost,
            "operations": list(self.operations),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatementArtifact":
        return cls(
            statement=data["statement"],
            cost=data["cost"],
            operations=tuple(data.get("operations", ())),
        )

    @classmethod
    def from_code(cls, code: StatementCode) -> "StatementArtifact":
        return cls(
            statement=str(code.statement),
            cost=code.cost,
            operations=tuple(inst.describe() for inst in code.instances),
        )


@dataclass(frozen=True)
class CompilationResult:
    """The immutable record of compiling one program for one target.

    Construct through :meth:`from_state` (what
    :meth:`repro.toolchain.Session.compile` does) or :meth:`from_dict`
    (deserialization).  Scalar facts live in :attr:`metrics` and are also
    exposed as flat properties (``code_size``, ``spill_count``, ...) for
    compatibility with the legacy ``CompiledProgram``.
    """

    name: str
    processor: str
    metrics: CompileMetrics
    pass_timings: Dict[str, float] = field(default_factory=dict)
    config: Optional[PipelineConfig] = None
    diagnostics: Tuple[Diagnostic, ...] = ()
    encoding: Optional[str] = None
    # Live artifacts -- absent on detached (deserialized) results.
    program: Optional[Program] = field(default=None, repr=False, compare=False)
    statement_codes: Tuple[StatementCode, ...] = field(
        default=(), repr=False, compare=False
    )
    # Per-block view (same StatementCode objects plus branch pseudo-code);
    # empty on legacy/straight-line construction paths.
    block_codes: Tuple[BlockCode, ...] = field(default=(), repr=False, compare=False)
    words: Tuple[InstructionWord, ...] = field(default=(), repr=False, compare=False)
    binding: Optional[ResourceBinding] = field(default=None, repr=False, compare=False)
    # Stored renderings -- populated on detached results so every view
    # survives serialization; live results render from the artifacts.
    stored_listing: Optional[str] = field(default=None, repr=False)
    stored_statements: Optional[Tuple[StatementArtifact, ...]] = field(
        default=None, repr=False
    )
    # Chrome trace-event export of this compile (``Tracer.to_chrome_trace``)
    # when the request asked for tracing; None otherwise.
    trace: Optional[dict] = field(default=None, repr=False, compare=False)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_state(
        cls,
        program: Program,
        processor: str,
        state: CompilationState,
        binding: Optional[ResourceBinding] = None,
        config: Optional[PipelineConfig] = None,
        trace: Optional[dict] = None,
    ) -> "CompilationResult":
        """Build a result from one finished :class:`CompilationState`."""
        instances = state.all_instances()
        selection_stats = getattr(state, "selection_stats", None) or {}
        opt_stats = getattr(state, "opt_stats", None)
        metrics = CompileMetrics(
            code_size=code_size(state.words),
            operation_count=len(instances),
            spill_count=count_spills(instances),
            selection_cost=sum(code.cost for code in state.statement_codes),
            statement_count=sum(
                1 for code in state.statement_codes if not is_control_code(code)
            ),
            compile_time_s=sum(state.pass_timings.values()),
            nodes_labelled=int(selection_stats.get("nodes_labelled", 0)),
            label_memo_hit_rate=float(selection_stats.get("memo_hit_rate", 0.0)),
            tables_build_time_s=float(selection_stats.get("tables_build_time_s", 0.0)),
            opt_nodes_before=opt_stats.nodes_before if opt_stats else 0,
            opt_nodes_after=opt_stats.nodes_after if opt_stats else 0,
            opt_folds=(opt_stats.folds + opt_stats.algebraic) if opt_stats else 0,
            opt_cse_hits=opt_stats.cse_hits if opt_stats else 0,
            opt_temps=opt_stats.temps_introduced if opt_stats else 0,
            opt_gvn_hits=opt_stats.gvn_hits if opt_stats else 0,
            opt_licm_hoisted=opt_stats.licm_hoisted if opt_stats else 0,
            opt_strength_reductions=(
                opt_stats.strength_reductions if opt_stats else 0
            ),
            opt_hw_loops=opt_stats.hw_loops if opt_stats else 0,
            verify_time_s=getattr(state, "verify_time_s", 0.0),
            verify_checks=getattr(state, "verify_checks", 0),
        )
        return cls(
            name=program.name,
            processor=processor,
            metrics=metrics,
            pass_timings=dict(state.pass_timings),
            config=config,
            diagnostics=tuple(state.diagnostics),
            encoding=state.encoding,
            program=program,
            statement_codes=tuple(state.statement_codes),
            block_codes=tuple(state.block_codes),
            words=tuple(state.words),
            binding=binding,
            trace=trace,
        )

    # -- scalar compatibility properties ------------------------------------------

    @property
    def code_size(self) -> int:
        """Number of instruction words (the metric of figure 2)."""
        return self.metrics.code_size

    @property
    def operation_count(self) -> int:
        """Number of RT operations before compaction (incl. spill code)."""
        return self.metrics.operation_count

    @property
    def spill_count(self) -> int:
        return self.metrics.spill_count

    @property
    def selection_cost(self) -> int:
        return self.metrics.selection_cost

    @property
    def is_detached(self) -> bool:
        """True when this result was deserialized and carries no live
        IR/backend artifacts (views and metrics still work)."""
        return self.program is None and self.stored_statements is not None

    @property
    def instances(self) -> List[RTInstance]:
        """All RT instances in statement order (live results only)."""
        self._require_artifacts("instances")
        instances: List[RTInstance] = []
        for code in self.statement_codes:
            instances.extend(code.instances)
        return instances

    def _require_artifacts(self, what: str) -> None:
        if self.is_detached:
            raise ResultError(
                "detached CompilationResult (deserialized from to_dict/to_json) "
                "carries no live %s; recompile to get them" % what
            )

    # -- views --------------------------------------------------------------------

    #: Names accepted by :meth:`view`.
    VIEWS = ("listing", "encoding", "statements", "metrics", "timings")

    def listing(self) -> str:
        """The instruction-word listing (callable, like the legacy API)."""
        if self.stored_listing is not None:
            return self.stored_listing
        return format_listing(
            list(self.words), title="%s on %s" % (self.name, self.processor)
        )

    def statements(self) -> Tuple[StatementArtifact, ...]:
        """Per-statement artifacts: source text, cost, RT operations."""
        if self.stored_statements is not None:
            return self.stored_statements
        return tuple(StatementArtifact.from_code(code) for code in self.statement_codes)

    def view(self, name: str):
        """A named view of the result (see :data:`VIEWS`)."""
        if name == "listing":
            return self.listing()
        if name == "encoding":
            return self.encoding
        if name == "statements":
            return self.statements()
        if name == "metrics":
            return self.metrics.to_dict()
        if name == "timings":
            return dict(self.pass_timings)
        raise ResultError(
            "unknown result view %r; available views: %s"
            % (name, ", ".join(self.VIEWS))
        )

    @property
    def is_multi_block(self) -> bool:
        """True when the compiled program is a CFG (loops/branches)."""
        from repro.codegen.selection import is_multi_block

        return is_multi_block(self.block_codes)

    def simulation_trace(
        self,
        environment: Optional[Dict[str, int]] = None,
        max_steps: Optional[int] = None,
    ):
        """Execute the generated code through the RT-level simulator and
        return the :class:`~repro.sim.rtsim.SimulationTrace` (per executed
        statement: operations + environment snapshot; loop bodies appear
        once per iteration).  Live results only.  ``max_steps`` bounds CFG
        execution (default: the IR step limit)."""
        self._require_artifacts("statement codes (needed for simulation)")
        from repro.ir.program import DEFAULT_STEP_LIMIT
        from repro.sim.rtsim import trace_cfg_execution, trace_execution

        if self.is_multi_block:
            entry = self.program.entry_block_name() if self.program else None
            return trace_cfg_execution(
                list(self.block_codes),
                environment or {},
                entry=entry,
                max_steps=max_steps if max_steps is not None else DEFAULT_STEP_LIMIT,
            )
        return trace_execution(list(self.statement_codes), environment or {})

    def simulate(
        self,
        environment: Optional[Dict[str, int]] = None,
        max_steps: Optional[int] = None,
    ) -> Dict[str, int]:
        """The final environment after simulating the generated code."""
        return self.simulation_trace(environment, max_steps=max_steps).final_environment

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """A lossless, JSON-serializable description of the result."""
        data = {
            "schema": RESULT_SCHEMA_VERSION,
            "name": self.name,
            "processor": self.processor,
            "metrics": self.metrics.to_dict(),
            "pass_timings": dict(self.pass_timings),
            "config": None if self.config is None else self.config.to_dict(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "statements": [s.to_dict() for s in self.statements()],
            "listing": self.listing(),
            "encoding": self.encoding,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict) -> "CompilationResult":
        """Rebuild a (detached) result from :meth:`to_dict` output."""
        schema = data.get("schema", RESULT_SCHEMA_VERSION)
        if schema != RESULT_SCHEMA_VERSION:
            raise ResultError(
                "unsupported CompilationResult schema %r (expected %d)"
                % (schema, RESULT_SCHEMA_VERSION)
            )
        config = data.get("config")
        # Always rebuild the base class: subclasses (the legacy
        # CompiledProgram shim) have a different constructor signature.
        return CompilationResult(
            name=data["name"],
            processor=data["processor"],
            metrics=CompileMetrics.from_dict(data["metrics"]),
            pass_timings=dict(data.get("pass_timings", {})),
            config=None if config is None else PipelineConfig.from_dict(config),
            diagnostics=tuple(
                Diagnostic.from_dict(d) for d in data.get("diagnostics", ())
            ),
            encoding=data.get("encoding"),
            stored_listing=data.get("listing", ""),
            stored_statements=tuple(
                StatementArtifact.from_dict(s) for s in data.get("statements", ())
            ),
            trace=data.get("trace"),
        )

    @classmethod
    def from_json(cls, text: str) -> "CompilationResult":
        return cls.from_dict(json.loads(text))

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "processor": self.processor,
            "code_size": self.code_size,
            "operation_count": self.operation_count,
            "spill_count": self.spill_count,
            "selection_cost": self.selection_cost,
            "compile_time_s": self.metrics.compile_time_s,
        }

"""Restricted code selectors, memoized per retargeting result.

Historically this lived in :mod:`repro.record.compiler`; it moved here so
the session layer no longer depends on the legacy compiler module (which
now builds *on top of* the toolchain).  The legacy module re-exports it.
"""

from __future__ import annotations

from repro.grammar.construct import build_tree_grammar
from repro.ise.templates import RTTemplateBase
from repro.record.retarget import RetargetResult
from repro.selector.burs import CodeSelector


def restricted_selector(
    retarget_result: RetargetResult,
    allow_chained: bool = True,
    use_expanded_templates: bool = True,
) -> CodeSelector:
    """The code selector for a (possibly restricted) template base.

    Dropping chained templates models conventional code generators that
    only know single-operation instructions; dropping expansion-derived
    templates disables the commutativity / rewrite-rule search space.

    Restricted grammars are memoized *on the retarget result*, so every
    compiler/session sharing one result also shares one selector per
    restriction -- ablation sweeps stop paying repeated grammar
    construction.  (The memo lives in a ``_``-prefixed attribute, which
    the retarget cache deliberately does not pickle.)
    """
    if allow_chained and use_expanded_templates:
        return retarget_result.selector
    memo = retarget_result.__dict__.setdefault("_restricted_selectors", {})
    key = (allow_chained, use_expanded_templates)
    if key not in memo:
        base = retarget_result.template_base
        restricted = RTTemplateBase(processor=base.processor)
        for template in base:
            if not allow_chained and template.is_chained():
                continue
            if not use_expanded_templates and template.origin != "extracted":
                continue
            restricted.add(template)
        grammar = build_tree_grammar(retarget_result.netlist, restricted)
        memo[key] = CodeSelector(grammar)
    return memo[key]

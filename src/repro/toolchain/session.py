"""The session/pipeline facade -- the canonical compilation API.

A :class:`Session` owns one retargeted processor plus one configured pass
pipeline and amortizes everything target-side (grammar restriction,
selector construction, spill-storage lookup) across any number of
compilations::

    from repro.toolchain import Toolchain

    session = Toolchain.for_target("tms320c25")
    compiled = session.compile("int a, b, c, d; d = c + a * b;")
    batch = session.compile_many([src1, src2, src3])

The default pipeline runs the :mod:`repro.opt` IR optimizer ahead of
selection (disable per session with ``PipelineConfig(use_optimizer=False)``
or the ``no-opt`` preset for the exact pre-optimizer pipeline).

:class:`Toolchain` binds a :class:`~repro.toolchain.registry.TargetRegistry`
(where the HDL comes from) to a :class:`~repro.toolchain.cache.RetargetCache`
(whether retargeting re-runs) and hands out sessions.  Every compile
returns an immutable :class:`~repro.toolchain.results.CompilationResult`
(metrics, per-pass timings, views, JSON serialization); the concurrent
batch layer on top of sessions lives in :mod:`repro.service`.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, Iterable, List, Optional, Union

from repro.frontend.lowering import lower_to_program
from repro.ir.binding import bind_program, default_data_memory
from repro.ir.program import Program
from repro.obs.trace import Tracer, use_tracer
from repro.record.retarget import RetargetResult, retarget
from repro.toolchain.cache import RetargetCache, default_cache
from repro.toolchain.passes import (
    CompilationState,
    PassContext,
    PassManager,
    PipelineConfig,
)
from repro.toolchain.registry import TargetRegistry, TargetSpec, default_registry
from repro.toolchain.results import CompilationResult
from repro.toolchain.selectors import restricted_selector

Source = Union[str, Program]


class Session:
    """A compilation session: one retargeted processor, one pipeline.

    Construction is the expensive part (selector restriction happens
    here, memoized per retarget result); ``compile``/``compile_many`` are
    then cheap and side-effect free.
    """

    def __init__(
        self,
        retarget_result: RetargetResult,
        config: Optional[PipelineConfig] = None,
        spec: Optional[TargetSpec] = None,
        pass_manager: Optional[PassManager] = None,
    ):
        self.retarget_result = retarget_result
        self.config = config if config is not None else PipelineConfig()
        self.spec = spec
        self.selector = restricted_selector(
            retarget_result,
            allow_chained=self.config.allow_chained,
            use_expanded_templates=self.config.use_expanded_templates,
        )
        self.pass_manager = (
            pass_manager
            if pass_manager is not None
            else PassManager.from_config(self.config)
        )
        self._spill_storage = default_data_memory(retarget_result.netlist)
        self._hardware_loops = self._resolve_hardware_loops()

    def _resolve_hardware_loops(self) -> bool:
        """Whether this target has a dedicated repeat counter.  An
        explicit spec wins; otherwise the registry entry of the
        retargeted processor's name decides (unregistered names: no)."""
        if self.spec is not None:
            return bool(getattr(self.spec, "hardware_loops", False))
        try:
            spec = default_registry().get(self.retarget_result.processor)
        except KeyError:
            return False
        return bool(spec.hardware_loops)

    # -- introspection -----------------------------------------------------------

    @property
    def processor(self) -> str:
        return self.retarget_result.processor

    def pass_names(self) -> List[str]:
        return self.pass_manager.names()

    def reconfigured(self, config: PipelineConfig) -> "Session":
        """A sibling session on the same retarget result with another
        pipeline (selector restriction is shared via the memo cache)."""
        return Session(self.retarget_result, config=config, spec=self.spec)

    # -- compilation -------------------------------------------------------------

    def _merged_overrides(
        self, binding_overrides: Optional[Dict[str, str]]
    ) -> Optional[Dict[str, str]]:
        defaults = dict(self.spec.binding_overrides) if self.spec else {}
        if binding_overrides:
            defaults.update(binding_overrides)
        return defaults or None

    def compile_program(
        self,
        program: Program,
        binding_overrides: Optional[Dict[str, str]] = None,
        tracer: Optional[Tracer] = None,
    ) -> CompilationResult:
        """Run the configured pass pipeline on an IR program.

        With an explicit ``tracer`` the whole compile runs under it (a
        ``compile`` root span wraps binding and every pipeline pass) and
        the result carries the exported Chrome trace in ``.trace``.
        Without one, spans still flow to whatever ambient tracer
        :func:`repro.obs.trace.use_tracer` installed -- but ``.trace``
        stays ``None``; the caller owning the tracer exports it.
        """
        if tracer is not None:
            with use_tracer(tracer):
                with tracer.span(
                    "compile", program=program.name, target=self.processor
                ):
                    state, binding = self._run_pipeline(
                        program, binding_overrides
                    )
            trace = tracer.to_chrome_trace(
                process_name="repro compile %s" % self.processor
            )
        else:
            state, binding = self._run_pipeline(program, binding_overrides)
            trace = None
        # state.program is the program the backend actually selected --
        # the optimizer's fresh rewrite when the opt pass ran (it never
        # aliases the caller's program), the input program otherwise.
        return CompilationResult.from_state(
            program=state.program,
            processor=self.processor,
            state=state,
            binding=binding,
            config=self.config,
            trace=trace,
        )

    def _run_pipeline(self, program, binding_overrides):
        binding = bind_program(
            program,
            self.retarget_result.netlist,
            overrides=self._merged_overrides(binding_overrides),
        )
        context = PassContext(
            selector=self.selector,
            binding=binding,
            spill_storage=self._spill_storage,
            netlist=self.retarget_result.netlist,
            config=self.config,
            hardware_loops=self._hardware_loops,
        )
        state: CompilationState = self.pass_manager.run(program, context)
        return state, binding

    def compile(
        self,
        source: Source,
        name: Optional[str] = None,
        binding_overrides: Optional[Dict[str, str]] = None,
        tracer: Optional[Tracer] = None,
    ) -> CompilationResult:
        """Compile source text (or an already lowered IR program).

        ``name`` names the compiled program: for source text it defaults
        to ``"program"``; for an already-lowered :class:`Program` it
        defaults to the program's own name, and an explicit ``name``
        renames a *copy* (the caller's program object is never mutated).
        """
        if isinstance(source, Program):
            program = source
            if name is not None and name != program.name:
                program = dataclass_replace(program, name=name)
        else:
            program = lower_to_program(source, name=name or "program")
        return self.compile_program(
            program, binding_overrides=binding_overrides, tracer=tracer
        )

    def compile_many(
        self,
        sources: Iterable[Source],
        names: Optional[Iterable[str]] = None,
        binding_overrides: Optional[Dict[str, str]] = None,
    ) -> List[CompilationResult]:
        """Batch compilation: every source through the shared pipeline.

        Equivalent to sequential :meth:`compile` calls but pays the
        session's target-side setup exactly once (that setup already
        happened in ``__init__``), which is what makes throughput-style
        workloads cheap.  When ``names`` is omitted, source texts get
        positional names (``program0``, ``program1``, ...) while
        :class:`Program` sources keep their own names; an explicit
        ``names`` list applies uniformly to both kinds.
        """
        source_list = list(sources)
        name_list: List[Optional[str]]
        if names is None:
            name_list = [
                None if isinstance(source, Program) else "program%d" % index
                for index, source in enumerate(source_list)
            ]
        else:
            name_list = list(names)
            if len(name_list) != len(source_list):
                raise ValueError(
                    "got %d names for %d sources" % (len(name_list), len(source_list))
                )
        return [
            self.compile(source, name=name, binding_overrides=binding_overrides)
            for source, name in zip(source_list, name_list)
        ]

    def compile_kernel(
        self,
        kernel_name: str,
        binding_overrides: Optional[Dict[str, str]] = None,
    ) -> CompilationResult:
        """Compile a DSPStone kernel by name."""
        from repro.dspstone import kernel_program

        return self.compile_program(
            kernel_program(kernel_name), binding_overrides=binding_overrides
        )

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        info = dict(self.retarget_result.summary())
        info["passes"] = ", ".join(self.pass_names())
        return info


class Toolchain:
    """Factory of :class:`Session` objects.

    Binds a target registry and a retarget cache; the classmethod
    constructors use the process-wide defaults, which is what scripts and
    the CLI want.
    """

    def __init__(
        self,
        registry: Optional[TargetRegistry] = None,
        cache: Optional[RetargetCache] = None,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.cache = cache if cache is not None else default_cache()

    def _resolve_config(self, config, preset) -> PipelineConfig:
        if config is not None and preset is not None:
            raise ValueError("pass either config= or preset=, not both")
        if preset is not None:
            return PipelineConfig.preset(preset)
        return config if config is not None else PipelineConfig()

    def session_for_hdl(
        self,
        hdl_source: str,
        config: Optional[PipelineConfig] = None,
        preset: Optional[str] = None,
        spec: Optional[TargetSpec] = None,
        expansion=None,
        generate_matcher: bool = True,
        use_cache: bool = True,
    ) -> Session:
        """A session for raw HDL text (cache-aware)."""
        resolved = self._resolve_config(config, preset)
        if use_cache:
            result, _hit = self.cache.get_or_retarget(
                hdl_source, expansion=expansion, generate_matcher=generate_matcher
            )
        else:
            result = retarget(
                hdl_source, expansion=expansion, generate_matcher=generate_matcher
            )
        return Session(result, config=resolved, spec=spec)

    def session(self, target: str, **kwargs) -> Session:
        """A session for a registered target name or an HDL file path."""
        spec = self.registry.resolve(target)
        return self.session_for_hdl(spec.hdl_source, spec=spec, **kwargs)

    # -- one-line constructors ---------------------------------------------------

    @classmethod
    def for_target(cls, target: str, **kwargs) -> Session:
        """``Toolchain.for_target("tms320c25")`` -- the canonical entry."""
        return cls().session(target, **kwargs)

    @classmethod
    def for_hdl(cls, hdl_source: str, **kwargs) -> Session:
        return cls().session_for_hdl(hdl_source, **kwargs)

    @classmethod
    def for_file(cls, path: str, **kwargs) -> Session:
        return cls().session(path, **kwargs)

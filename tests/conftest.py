"""Shared fixtures: retargeted processors are expensive enough to share.

The whole tier-1 suite compiles with the static pipeline verifier
enabled: ``REPRO_VERIFY`` is set *before* any ``repro`` import, because
``PipelineConfig``'s default (and the import-time ``PRESETS``) captures
the environment when the dataclass is instantiated.
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_VERIFY", "1")

import pytest

from repro.record.compiler import RecordCompiler
from repro.record.retarget import retarget
from repro.targets.library import all_target_names, target_hdl_source


@pytest.fixture(scope="session")
def retarget_results():
    """Retargeting results for every built-in target, computed once."""
    results = {}
    for name in all_target_names():
        results[name] = retarget(target_hdl_source(name))
    return results


@pytest.fixture(scope="session")
def demo_result(retarget_results):
    return retarget_results["demo"]


@pytest.fixture(scope="session")
def tms_result(retarget_results):
    return retarget_results["tms320c25"]


@pytest.fixture(scope="session")
def ref_result(retarget_results):
    return retarget_results["ref"]


@pytest.fixture(scope="session")
def fuzz_harnesses(retarget_results):
    """Differential-oracle harnesses for every DSPStone-capable target,
    built from the shared retarget fixtures (used by the fuzz campaign
    and corpus-replay suites)."""
    from repro.fuzz.campaign import DSP_TARGETS
    from repro.fuzz.oracles import TargetHarness

    return {
        name: TargetHarness.create(name, retarget_result=retarget_results[name])
        for name in DSP_TARGETS
    }


@pytest.fixture(scope="session")
def tms_compiler(tms_result):
    return RecordCompiler(tms_result)


@pytest.fixture(scope="session")
def demo_compiler(demo_result):
    return RecordCompiler(demo_result)

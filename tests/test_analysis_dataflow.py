"""Dataflow analyses checked against naive fixpoint oracles.

The solver in ``repro.analysis`` runs a worklist in reverse postorder;
the oracles here use chaotic iteration over set equations (dominators:
the textbook intersection equations; liveness/reaching: round-robin
until nothing changes).  Both must agree on every CFG -- random graphs
from hypothesis and every DSPStone kernel, loop forms included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ControlFlowGraph,
    dominance_relation,
    dominator_tree,
    dominates,
    immediate_dominators,
    liveness,
    possibly_uninitialized_uses,
    reaching_definitions,
    use_def_chains,
)
from repro.analysis.liveness import block_use_def
from repro.analysis.reaching import UNINITIALIZED, Definition, ReachingProblem
from repro.dspstone import all_kernel_names, kernel_program, loop_kernel_names
from repro.ir.expr import Const, Op, VarRef
from repro.ir.program import BasicBlock, CBranch, Jump, Program, Statement


# ---------------------------------------------------------------------------
# Naive oracles
# ---------------------------------------------------------------------------


def oracle_dominators(cfg: ControlFlowGraph):
    """Textbook iterative dominator sets: Dom(entry) = {entry},
    Dom(b) = {b} | intersection of Dom(p) over predecessors."""
    names = list(cfg.names)
    dom = {name: set(names) for name in names}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for name in names:
            if name == cfg.entry:
                continue
            preds = [p for p in cfg.predecessors[name]]
            new = set(names)
            for pred in preds:
                new &= dom[pred]
            new |= {name}
            if new != dom[name]:
                dom[name] = new
                changed = True
    return dom

def oracle_liveness(program, cfg: ControlFlowGraph):
    """Chaotic-iteration liveness (no worklist, no ordering)."""
    use, deff = {}, {}
    for name in cfg.names:
        use[name], deff[name] = block_use_def(program.block(name))
    live_in = {name: set() for name in cfg.names}
    live_out = {name: set() for name in cfg.names}
    changed = True
    while changed:
        changed = False
        for name in cfg.names:
            out = set()
            for succ in cfg.successors[name]:
                out |= live_in[succ]
            new_in = use[name] | (out - deff[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return live_in, live_out


def oracle_reaching(program, cfg: ControlFlowGraph):
    """Chaotic-iteration reaching definitions, reusing only the per-block
    transfer (statement-level gen/kill is where the modelling lives)."""
    problem = ReachingProblem(program)
    reach_in = {name: frozenset() for name in cfg.names}
    reach_out = {name: frozenset() for name in cfg.names}
    changed = True
    while changed:
        changed = False
        for name in cfg.names:
            incoming = set()
            if name == cfg.entry:
                incoming |= set(problem.boundary())
            for pred in cfg.names:
                if name in cfg.successors[pred]:
                    incoming |= set(reach_out[pred])
            incoming = frozenset(incoming)
            out = problem.transfer(name, incoming)
            if incoming != reach_in[name] or out != reach_out[name]:
                reach_in[name] = incoming
                reach_out[name] = out
                changed = True
    return reach_in, reach_out


def assert_matches_oracles(program):
    cfg = ControlFlowGraph.from_program(program)
    if not cfg.names:
        return
    # Dominators.
    idom = immediate_dominators(cfg)
    relation = dominance_relation(idom)
    assert relation == oracle_dominators(cfg)
    # Liveness.
    result = liveness(program, cfg=cfg)
    oracle_in, oracle_out = oracle_liveness(program, cfg)
    assert {n: set(s) for n, s in result.live_in.items()} == oracle_in
    assert {n: set(s) for n, s in result.live_out.items()} == oracle_out
    # Reaching definitions.
    reaching = reaching_definitions(program, cfg=cfg)
    oracle_rin, oracle_rout = oracle_reaching(program, cfg)
    assert reaching.reach_in == oracle_rin
    assert reaching.reach_out == oracle_rout


# ---------------------------------------------------------------------------
# Random programs
# ---------------------------------------------------------------------------

_VARS = ["a", "b", "c", "d"]


@st.composite
def random_programs(draw):
    block_count = draw(st.integers(min_value=1, max_value=6))
    names = ["b%d" % i for i in range(block_count)]
    blocks = []
    for name in names:
        statements = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            dest = draw(st.sampled_from(_VARS))
            source = draw(st.sampled_from(_VARS))
            statements.append(
                Statement(dest, Op("add", (VarRef(source), Const(1))))
            )
        kind = draw(st.sampled_from(["none", "jump", "cbranch"]))
        terminator = None
        if kind == "jump":
            terminator = Jump(draw(st.sampled_from(names)))
        elif kind == "cbranch":
            terminator = CBranch(
                Op("lt", (VarRef(draw(st.sampled_from(_VARS))), Const(10))),
                draw(st.sampled_from(names)),
                draw(st.sampled_from(names)),
            )
        blocks.append(BasicBlock(name, statements, terminator))
    return Program("random", blocks, scalars=list(_VARS))


class TestAgainstOraclesOnRandomCFGs:
    @settings(max_examples=120, deadline=None)
    @given(random_programs())
    def test_solver_matches_naive_fixpoints(self, program):
        assert_matches_oracles(program)


class TestAgainstOraclesOnKernels:
    def test_every_unrolled_kernel(self):
        for name in all_kernel_names():
            assert_matches_oracles(kernel_program(name))

    def test_every_loop_kernel(self):
        for name in loop_kernel_names():
            program = kernel_program(name)
            assert not program.is_straight_line()
            assert_matches_oracles(program)


# ---------------------------------------------------------------------------
# Hand-checked structure
# ---------------------------------------------------------------------------


def _diamond():
    #    entry -> left/right -> exit, plus a back edge exit -> entry
    cond = Op("lt", (VarRef("a"), Const(4)))
    return Program(
        "diamond",
        [
            BasicBlock("entry", [Statement("a", Const(1))],
                       CBranch(cond, "left", "right")),
            BasicBlock("left", [Statement("b", VarRef("a"))], Jump("exit")),
            BasicBlock("right", [Statement("b", Const(9))], Jump("exit")),
            BasicBlock("exit", [Statement("c", VarRef("b"))],
                       CBranch(cond, "entry", "done")),
            BasicBlock("done", [Statement("d", VarRef("c"))]),
        ],
        scalars=["a", "b", "c", "d"],
    )


class TestDominators:
    def test_diamond_idoms(self):
        cfg = ControlFlowGraph.from_program(_diamond())
        idom = immediate_dominators(cfg)
        assert idom == {
            "entry": None,
            "left": "entry",
            "right": "entry",
            "exit": "entry",
            "done": "exit",
        }

    def test_dominator_tree_and_relation(self):
        cfg = ControlFlowGraph.from_program(_diamond())
        idom = immediate_dominators(cfg)
        tree = dominator_tree(idom)
        assert set(tree["entry"]) == {"left", "right", "exit"}
        assert dominates(idom, "entry", "done")
        assert dominates(idom, "exit", "done")
        assert not dominates(idom, "left", "exit")


class TestReachingChains:
    def test_use_def_chains_pick_up_both_arms(self):
        program = _diamond()
        chains = use_def_chains(program)
        # exit reads b, defined in both arms of the diamond.
        reaching = chains[("exit", 0, "b")]
        assert {(d.block, d.variable) for d in reaching} == {
            ("left", "b"),
            ("right", "b"),
        }

    def test_initialized_diamond_has_no_flagged_reads(self):
        # Every read in the diamond is dominated by an assignment.
        assert possibly_uninitialized_uses(_diamond()) == []

    def test_reads_of_program_inputs_are_flagged(self):
        program = Program(
            "inputs",
            [BasicBlock("entry", [Statement("y", VarRef("x"))])],
            scalars=["x", "y"],
        )
        assert possibly_uninitialized_uses(program) == [("entry", 0, "x")]

    def test_entry_definitions_are_marked(self):
        definition = Definition(UNINITIALIZED, -1, "x")
        assert definition.is_uninitialized
        assert "uninitialized" in str(definition)


class TestReversePostorder:
    def test_matches_layout_on_kernels(self):
        # Single-block programs: RPO is the block itself.
        program = kernel_program("fir")
        assert program.reverse_postorder() == [b.name for b in program.blocks]

    def test_unreachable_blocks_are_dropped(self):
        program = _diamond()
        program.blocks.append(BasicBlock("orphan", [Statement("d", Const(0))]))
        order = program.reverse_postorder()
        assert "orphan" not in order
        assert order[0] == "entry"
        assert [b.name for b in program.reachable_blocks()] == order

    def test_deterministic(self):
        program = _diamond()
        assert program.reverse_postorder() == program.reverse_postorder()

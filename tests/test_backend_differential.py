"""Backend differential suite: schedule + spill + compaction output must
RT-simulate observably equal to reference execution of the source program
for every DSPStone-capable target x kernel (unrolled *and* loop forms).

The existing differential suites cover selection (`test_selector_differential`)
and the optimizer (`test_opt_differential`); this one exercises the backend
passes behind them, in *storage-faithful* simulation mode: register reads
consume whatever the register actually holds, so a scheduling or spill bug
produces a stale value and a failing comparison instead of being papered
over by the simulator's value table.
"""

import pytest

from repro.dspstone import all_kernel_names, get_kernel, kernel_program, loop_kernel_names
from repro.hdl.ast import ModuleKind
from repro.opt import OPT_TEMP_PREFIXES
from repro.toolchain import PipelineConfig, Session

#: Targets whose grammars cover the DSPStone kernels (the other built-ins
#: cannot compile any DSPStone kernel: no multiplier / no usable ALU path).
DSP_TARGETS = ("demo", "ref", "tms320c25")


def _memory_storages(retarget_result):
    return {
        module.name
        for module in retarget_result.netlist.sequential_modules()
        if module.kind == ModuleKind.MEMORY
    }


def _seed_environment(program):
    environment = {}
    for name, size in sorted(program.arrays.items()):
        for index in range(size):
            environment["%s[%d]" % (name, index)] = (index * 31 + len(name) * 7) % 95 + 1
    for position, scalar in enumerate(sorted(program.scalars)):
        environment[scalar] = (position * 13 + 5) % 50
    return environment


def _observables(environment):
    return {
        key: value
        for key, value in environment.items()
        if not key.startswith(OPT_TEMP_PREFIXES)
    }


def _faithful_simulate(result, retarget_result, environment):
    """Simulate a compilation result in storage-faithful mode."""
    from repro.sim.rtsim import RTSimulator

    simulator = RTSimulator(
        dict(environment), memory_storages=_memory_storages(retarget_result)
    )
    if result.is_multi_block:
        entry = result.program.entry_block_name()
        return simulator.run_cfg(list(result.block_codes), entry=entry)
    return simulator.run_block_code(list(result.statement_codes))


@pytest.fixture(scope="module", params=DSP_TARGETS)
def target_session(request, retarget_results):
    retarget_result = retarget_results[request.param]
    return request.param, retarget_result, Session(retarget_result)


ALL_KERNELS = all_kernel_names() + loop_kernel_names()


@pytest.mark.parametrize("kernel_name", ALL_KERNELS)
def test_backend_output_matches_reference(target_session, kernel_name):
    target, retarget_result, session = target_session
    program = kernel_program(kernel_name)
    environment = _seed_environment(program)
    compiled = session.compile_program(program)
    simulated = _faithful_simulate(compiled, retarget_result, environment)
    reference = program.execute(dict(environment))
    mismatches = {
        key: (simulated.get(key, 0), value)
        for key, value in _observables(reference).items()
        if simulated.get(key, 0) != value
    }
    assert not mismatches, (target, kernel_name, mismatches)


@pytest.mark.parametrize("kernel_name", loop_kernel_names())
def test_loop_kernel_equals_unrolled_counterpart(target_session, kernel_name):
    """At the documented trip count, the loop form and the hand-unrolled
    figure-2 kernel compute identical observable results."""
    target, retarget_result, session = target_session
    kernel = get_kernel(kernel_name)
    assert kernel.unrolled, kernel_name
    loop_program = kernel_program(kernel_name)
    unrolled_program = kernel_program(kernel.unrolled)
    environment = _seed_environment(loop_program)
    loop_out = _faithful_simulate(
        session.compile_program(loop_program), retarget_result, environment
    )
    unrolled_out = _faithful_simulate(
        session.compile_program(unrolled_program), retarget_result, environment
    )
    shared = set(unrolled_program.all_variables()) & set(loop_out)
    mismatches = {
        key: (loop_out.get(key, 0), unrolled_out.get(key, 0))
        for key in shared
        if loop_out.get(key, 0) != unrolled_out.get(key, 0)
    }
    assert not mismatches, (target, kernel_name, mismatches)


@pytest.mark.parametrize("preset", ["no-scheduling", "no-compaction", "conventional"])
def test_backend_ablations_stay_correct_on_loops(retarget_results, preset):
    """Every ablation preset still produces observably correct code for a
    loop kernel (the presets reconfigure exactly the passes this suite
    guards)."""
    retarget_result = retarget_results["tms320c25"]
    session = Session(retarget_result, config=PipelineConfig.preset(preset))
    program = kernel_program("dot_product_loop")
    environment = _seed_environment(program)
    compiled = session.compile_program(program)
    simulated = _faithful_simulate(compiled, retarget_result, environment)
    reference = program.execute(dict(environment))
    for key, value in _observables(reference).items():
        assert simulated.get(key, 0) == value, (preset, key)

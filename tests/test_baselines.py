"""Unit tests for the figure-2 baselines."""

import pytest

from repro.baselines import (
    GreedyMaximalMunch,
    conventional_compiler,
    conventional_options,
    hand_reference_size,
    hand_reference_table,
)
from repro.dspstone import all_kernel_names, get_kernel
from repro.selector import SubjectNode


class TestConventionalOptions:
    def test_everything_is_disabled(self):
        options = conventional_options()
        assert not options.allow_chained
        assert not options.use_expanded_templates
        assert not options.use_scheduling
        assert not options.use_compaction

    def test_conventional_compiler_uses_restricted_grammar(self, tms_result):
        baseline = conventional_compiler(tms_result)
        rt_rules = baseline._selector.grammar.rt_rules()
        assert all(not rule.template.is_chained() for rule in rt_rules)
        assert all(rule.template.origin == "extracted" for rule in rt_rules)

    def test_baseline_never_beats_record(self, tms_result, tms_compiler):
        baseline = conventional_compiler(tms_result)
        for name in ("real_update", "fir", "dot_product"):
            kernel = get_kernel(name)
            record_size = tms_compiler.compile_source(kernel.source, name=name).code_size
            baseline_size = baseline.compile_source(kernel.source, name=name).code_size
            assert baseline_size >= record_size


class TestHandReference:
    def test_every_kernel_has_a_reference_size(self):
        for name in all_kernel_names():
            assert hand_reference_size(name) > 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            hand_reference_size("no_such_kernel")

    def test_table_is_a_copy(self):
        table = hand_reference_table()
        table["fir"] = 0
        assert hand_reference_size("fir") > 0

    def test_reference_scales_with_workload(self):
        assert hand_reference_size("n_real_updates") == 4 * hand_reference_size("real_update")
        assert hand_reference_size("biquad_n") == 4 * hand_reference_size("biquad_one")
        assert hand_reference_size("convolution") == hand_reference_size("fir")


class TestGreedyMaximalMunch:
    def test_greedy_covers_simple_trees(self, tms_result):
        greedy = GreedyMaximalMunch(tms_result.grammar)
        root = SubjectNode(
            "ASSIGN",
            [
                SubjectNode("DMEM"),
                SubjectNode("add", [SubjectNode("DMEM"), SubjectNode("DMEM")]),
            ],
        )
        assert greedy.cover_size(root) >= 1

    def test_greedy_never_undercuts_optimal(self, tms_result):
        from repro.selector import CodeSelector

        greedy = GreedyMaximalMunch(tms_result.grammar)
        optimal = CodeSelector(tms_result.grammar)
        root = SubjectNode(
            "ASSIGN",
            [
                SubjectNode("DMEM"),
                SubjectNode(
                    "add",
                    [
                        SubjectNode("DMEM"),
                        SubjectNode("mul", [SubjectNode("DMEM"), SubjectNode("DMEM")]),
                    ],
                ),
            ],
        )
        assert greedy.cover_size(root) >= optimal.select(root).cost

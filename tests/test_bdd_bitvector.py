"""Unit tests for the symbolic bit-vector layer."""

import pytest

from repro.bdd import BDDManager, BitVector, bitvector_const, bitvector_equals


@pytest.fixture()
def manager():
    return BDDManager()


class TestConstruction:
    def test_constant_roundtrip(self, manager):
        vector = BitVector.constant(manager, 0b1011, 4)
        assert vector.constant_value() == 0b1011
        assert vector.width == 4
        assert vector.is_constant()

    def test_constant_truncates_to_width(self, manager):
        vector = BitVector.constant(manager, 0b10110, 4)
        assert vector.constant_value() == 0b0110

    def test_variables_are_symbolic(self, manager):
        vector = BitVector.variables(manager, "w", 3)
        assert vector.width == 3
        assert not vector.is_constant()
        assert vector.constant_value() is None

    def test_helper_functions(self, manager):
        vector = bitvector_const(manager, 5, 4)
        assert bitvector_equals(vector, 5).is_true()
        assert bitvector_equals(vector, 6).is_false()


class TestSlicingAndResizing:
    def test_slice(self, manager):
        vector = BitVector.constant(manager, 0b110100, 6)
        assert vector.slice(2, 4).constant_value() == 0b101

    def test_slice_bounds_checked(self, manager):
        vector = BitVector.constant(manager, 0, 4)
        with pytest.raises(ValueError):
            vector.slice(1, 4)
        with pytest.raises(ValueError):
            vector.slice(3, 1)

    def test_zero_extend_and_shrink(self, manager):
        vector = BitVector.constant(manager, 0b11, 2)
        assert vector.zero_extend(5).constant_value() == 0b11
        assert vector.zero_extend(5).width == 5
        assert vector.zero_extend(1).constant_value() == 1

    def test_concat(self, manager):
        low = BitVector.constant(manager, 0b01, 2)
        high = BitVector.constant(manager, 0b11, 2)
        assert low.concat(high).constant_value() == 0b1101


class TestOperators:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("bitwise_and", 0b1100, 0b1010, 0b1000),
            ("bitwise_or", 0b1100, 0b1010, 0b1110),
            ("bitwise_xor", 0b1100, 0b1010, 0b0110),
        ],
    )
    def test_bitwise(self, manager, op, a, b, expected):
        left = BitVector.constant(manager, a, 4)
        right = BitVector.constant(manager, b, 4)
        assert getattr(left, op)(right).constant_value() == expected

    def test_bitwise_not(self, manager):
        vector = BitVector.constant(manager, 0b0101, 4)
        assert vector.bitwise_not().constant_value() == 0b1010

    def test_add(self, manager):
        a = BitVector.constant(manager, 9, 4)
        b = BitVector.constant(manager, 5, 4)
        assert a.add(b).constant_value() == 14

    def test_add_wraps(self, manager):
        a = BitVector.constant(manager, 15, 4)
        b = BitVector.constant(manager, 2, 4)
        assert a.add(b).constant_value() == 1

    def test_add_mixed_width(self, manager):
        a = BitVector.constant(manager, 3, 2)
        b = BitVector.constant(manager, 8, 4)
        assert a.add(b).constant_value() == 11

    def test_equals_constant_symbolic(self, manager):
        vector = BitVector.variables(manager, "f", 2)
        condition = vector.equals_constant(2)
        assert condition.evaluate({"f[0]": False, "f[1]": True})
        assert not condition.evaluate({"f[0]": True, "f[1]": True})

    def test_equals_is_exhaustive(self, manager):
        vector = BitVector.variables(manager, "g", 2)
        conditions = [vector.equals_constant(value) for value in range(4)]
        union = manager.disjoin(iter(conditions))
        assert union.is_true()
        for i in range(4):
            for j in range(i + 1, 4):
                assert (conditions[i] & conditions[j]).is_false()

    def test_if_then_else(self, manager):
        condition = manager.variable("sel")
        then_value = BitVector.constant(manager, 5, 4)
        else_value = BitVector.constant(manager, 9, 4)
        result = then_value.if_then_else(condition, else_value)
        assert result.equals_constant(5) == condition
        assert result.equals_constant(9) == ~condition

    def test_repr_mentions_width(self, manager):
        assert "width=4" in repr(BitVector.constant(manager, 3, 4))
        assert "symbolic" in repr(BitVector.variables(manager, "s", 2))

"""Unit tests for the ROBDD manager."""

import pytest

from repro.bdd import BDDManager


@pytest.fixture()
def manager():
    return BDDManager()


class TestConstants:
    def test_true_is_tautology(self, manager):
        assert manager.true.is_tautology()
        assert manager.true.is_true()

    def test_false_is_unsatisfiable(self, manager):
        assert not manager.false.satisfiable()
        assert manager.false.is_false()

    def test_constant_helper(self, manager):
        assert manager.constant(True) == manager.true
        assert manager.constant(False) == manager.false

    def test_constants_are_constant(self, manager):
        assert manager.true.is_constant()
        assert manager.false.is_constant()
        assert not manager.variable("x").is_constant()


class TestVariables:
    def test_variable_is_satisfiable_but_not_tautology(self, manager):
        x = manager.variable("x")
        assert x.satisfiable()
        assert not x.is_tautology()

    def test_variable_is_hash_consed(self, manager):
        assert manager.variable("x") == manager.variable("x")

    def test_declared_variables_keep_order(self, manager):
        manager.variable("b")
        manager.variable("a")
        manager.variable("c")
        assert manager.declared_variables() == ["b", "a", "c"]


class TestConnectives:
    def test_and_with_false_is_false(self, manager):
        x = manager.variable("x")
        assert (x & manager.false).is_false()

    def test_and_with_true_is_identity(self, manager):
        x = manager.variable("x")
        assert (x & manager.true) == x

    def test_or_with_true_is_true(self, manager):
        x = manager.variable("x")
        assert (x | manager.true).is_true()

    def test_x_and_not_x_is_false(self, manager):
        x = manager.variable("x")
        assert (x & ~x).is_false()

    def test_x_or_not_x_is_true(self, manager):
        x = manager.variable("x")
        assert (x | ~x).is_true()

    def test_double_negation(self, manager):
        x = manager.variable("x")
        assert ~(~x) == x

    def test_xor_self_is_false(self, manager):
        x = manager.variable("x")
        assert (x ^ x).is_false()

    def test_xor_with_true_is_negation(self, manager):
        x = manager.variable("x")
        assert (x ^ manager.true) == ~x

    def test_de_morgan(self, manager):
        x, y = manager.variable("x"), manager.variable("y")
        assert ~(x & y) == (~x | ~y)

    def test_implies(self, manager):
        x, y = manager.variable("x"), manager.variable("y")
        implication = x.implies(y)
        assert implication.evaluate({"x": False, "y": False})
        assert not implication.evaluate({"x": True, "y": False})

    def test_iff(self, manager):
        x, y = manager.variable("x"), manager.variable("y")
        equivalence = x.iff(y)
        assert equivalence.evaluate({"x": True, "y": True})
        assert not equivalence.evaluate({"x": True, "y": False})

    def test_mixing_managers_is_rejected(self, manager):
        other = BDDManager()
        with pytest.raises(ValueError):
            _ = manager.variable("x") & other.variable("x")


class TestQueries:
    def test_support(self, manager):
        x, y, z = (manager.variable(n) for n in "xyz")
        function = (x & y) | z
        assert function.support() == ["x", "y", "z"]

    def test_support_of_constant_is_empty(self, manager):
        assert manager.true.support() == []

    def test_restrict_to_true_branch(self, manager):
        x, y = manager.variable("x"), manager.variable("y")
        assert (x & y).restrict({"x": True}) == y
        assert (x & y).restrict({"x": False}).is_false()

    def test_restrict_ignores_unknown_variables(self, manager):
        x = manager.variable("x")
        assert x.restrict({"nope": True}) == x

    def test_sat_count(self, manager):
        x, y = manager.variable("x"), manager.variable("y")
        assert (x & y).sat_count() == 1
        assert (x | y).sat_count() == 3
        assert manager.true.sat_count() == 4

    def test_sat_count_explicit_width(self, manager):
        x = manager.variable("x")
        manager.variable("y")
        manager.variable("z")
        assert x.sat_count(nvars=3) == 4

    def test_one_sat_of_false_is_none(self, manager):
        assert manager.false.one_sat() is None

    def test_one_sat_satisfies(self, manager):
        x, y = manager.variable("x"), manager.variable("y")
        function = x & ~y
        assignment = function.one_sat()
        assert function.evaluate(assignment)

    def test_evaluate_defaults_missing_to_false(self, manager):
        x = manager.variable("x")
        assert not x.evaluate({})

    def test_conjoin_and_disjoin(self, manager):
        variables = [manager.variable(n) for n in "abc"]
        conjunction = manager.conjoin(iter(variables))
        disjunction = manager.disjoin(iter(variables))
        assert conjunction.sat_count() == 1
        assert disjunction.sat_count() == 7
        assert manager.conjoin(iter([])).is_true()
        assert manager.disjoin(iter([])).is_false()

    def test_unknown_apply_operation_rejected(self, manager):
        with pytest.raises(ValueError):
            manager._apply("nand", manager.true.node, manager.false.node)


class TestStructuralSharing:
    def test_equivalent_functions_share_node(self, manager):
        x, y = manager.variable("x"), manager.variable("y")
        a = (x & y) | (x & ~y)
        assert a == x

    def test_node_count_grows_modestly(self, manager):
        variables = [manager.variable("v%d" % i) for i in range(10)]
        function = manager.false
        for variable in variables:
            function = function | variable
        assert manager.num_nodes() < 200

"""Property-based tests for the BDD engine (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager, BitVector

_NAMES = ["a", "b", "c", "d"]


def _expressions(depth=3):
    """Strategy producing (builder, evaluator) pairs for Boolean formulas."""
    leaves = st.sampled_from(_NAMES).map(
        lambda name: ("var", name)
    ) | st.booleans().map(lambda value: ("const", value))

    def extend(children):
        return st.tuples(st.sampled_from(["and", "or", "xor"]), children, children) | \
            st.tuples(st.just("not"), children)

    return st.recursive(leaves, extend, max_leaves=12)


def _build(manager, tree):
    if tree[0] == "var":
        return manager.variable(tree[1])
    if tree[0] == "const":
        return manager.constant(tree[1])
    if tree[0] == "not":
        return ~_build(manager, tree[1])
    op, left, right = tree
    a, b = _build(manager, left), _build(manager, right)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    return a ^ b


def _evaluate(tree, assignment):
    if tree[0] == "var":
        return assignment[tree[1]]
    if tree[0] == "const":
        return tree[1]
    if tree[0] == "not":
        return not _evaluate(tree[1], assignment)
    op, left, right = tree
    a, b = _evaluate(left, assignment), _evaluate(right, assignment)
    if op == "and":
        return a and b
    if op == "or":
        return a or b
    return a != b


@settings(max_examples=60, deadline=None)
@given(tree=_expressions(), bits=st.lists(st.booleans(), min_size=4, max_size=4))
def test_bdd_agrees_with_direct_evaluation(tree, bits):
    manager = BDDManager()
    for name in _NAMES:
        manager.variable(name)
    function = _build(manager, tree)
    assignment = dict(zip(_NAMES, bits))
    assert function.evaluate(assignment) == _evaluate(tree, assignment)


@settings(max_examples=40, deadline=None)
@given(tree=_expressions())
def test_sat_count_matches_truth_table(tree):
    manager = BDDManager()
    for name in _NAMES:
        manager.variable(name)
    function = _build(manager, tree)
    expected = 0
    for index in range(2 ** len(_NAMES)):
        assignment = {
            name: bool((index >> position) & 1) for position, name in enumerate(_NAMES)
        }
        if _evaluate(tree, assignment):
            expected += 1
    assert function.sat_count(nvars=len(_NAMES)) == expected


@settings(max_examples=40, deadline=None)
@given(tree=_expressions())
def test_one_sat_returns_a_model(tree):
    manager = BDDManager()
    for name in _NAMES:
        manager.variable(name)
    function = _build(manager, tree)
    model = function.one_sat()
    if model is None:
        assert not function.satisfiable()
    else:
        assert function.evaluate(model)


@settings(max_examples=40, deadline=None)
@given(tree=_expressions())
def test_negation_flips_sat_count(tree):
    manager = BDDManager()
    for name in _NAMES:
        manager.variable(name)
    function = _build(manager, tree)
    total = 2 ** len(_NAMES)
    assert function.sat_count(len(_NAMES)) + (~function).sat_count(len(_NAMES)) == total


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
)
def test_bitvector_add_matches_integer_add(a, b):
    manager = BDDManager()
    width = 9
    left = BitVector.constant(manager, a, width)
    right = BitVector.constant(manager, b, width)
    assert left.add(right).constant_value() == (a + b) % (1 << width)


@settings(max_examples=40, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=255),
    other=st.integers(min_value=0, max_value=255),
)
def test_bitvector_equality_is_exact(value, other):
    manager = BDDManager()
    vector = BitVector.constant(manager, value, 8)
    condition = vector.equals_constant(other)
    assert condition.is_true() == (value == other)
    assert condition.is_false() == (value != other)

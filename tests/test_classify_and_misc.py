"""Tests for classification helpers and assorted smaller behaviours."""

import pytest

from repro.expansion import ExpansionOptions, default_transformation_library
from repro.hdl import ModuleKind, parse_processor
from repro.netlist import build_netlist
from repro.netlist.classify import (
    control_source_modules,
    is_control_source,
    is_sequential,
    is_transparent,
    sequential_modules,
    storage_and_port_names,
)
from repro.targets import target_hdl_source


@pytest.fixture(scope="module")
def demo_netlist():
    return build_netlist(parse_processor(target_hdl_source("demo")))


class TestClassify:
    def test_sequential_modules(self, demo_netlist):
        names = {module.name for module in sequential_modules(demo_netlist)}
        assert names == {"ACC", "BREG", "DMEM"}
        for module in sequential_modules(demo_netlist):
            assert is_sequential(module)
            assert not is_control_source(module)

    def test_control_sources(self, demo_netlist):
        names = {module.name for module in control_source_modules(demo_netlist)}
        assert names == {"IM"}
        assert is_control_source(demo_netlist.module("IM"))

    def test_transparent_modules(self, demo_netlist):
        assert is_transparent(demo_netlist.module("ALU"))
        assert is_transparent(demo_netlist.module("DEC"))
        assert not is_transparent(demo_netlist.module("ACC"))
        assert not is_transparent(demo_netlist.module("IM"))

    def test_storage_and_port_names(self, demo_netlist):
        names = set(storage_and_port_names(demo_netlist))
        assert {"ACC", "BREG", "DMEM", "PIN", "POUT"} == names

    def test_mode_register_is_sequential_control_source(self):
        source = (
            "processor m; module IM kind instruction_memory out w : 4; end module;"
            " module MODE kind mode_register out m : 2; end module;"
        )
        netlist = build_netlist(parse_processor(source))
        mode = netlist.module("MODE")
        assert mode.kind == ModuleKind.MODE_REGISTER
        assert is_control_source(mode)
        assert not is_sequential(mode)


class TestExpansionOptions:
    def test_effective_rules_default(self):
        options = ExpansionOptions()
        assert len(options.effective_rules()) == len(default_transformation_library())

    def test_effective_rules_disabled(self):
        options = ExpansionOptions(use_rewrite_rules=False)
        assert options.effective_rules() == []

    def test_effective_rules_custom(self):
        custom = default_transformation_library()[:2]
        options = ExpansionOptions(rules=custom)
        assert options.effective_rules() == custom


class TestModuleHelpers:
    def test_assignments_to_and_memory_writes(self, demo_netlist):
        memory = demo_netlist.module("DMEM")
        assert len(memory.memory_writes()) == 1
        assert len(memory.assignments_to("dout")) == 1
        register = demo_netlist.module("ACC")
        assert len(register.assignments_to("q")) == 1
        assert register.memory_writes() == []

    def test_port_listings(self, demo_netlist):
        alu = demo_netlist.module("ALU")
        assert {p.name for p in alu.input_ports()} == {"a", "b", "f"}
        assert {p.name for p in alu.output_ports()} == {"y"}
        assert str(alu) == "ALU(combinational)"
        assert str(alu.port("y")) == "ALU.y"


class TestTargetSpecDefaults:
    def test_default_variable_storage_is_memory(self):
        from repro.targets import get_target

        for name in ("demo", "ref", "tms320c25"):
            assert get_target(name).default_variable_storage == "DMEM"

    def test_binding_overrides_default_empty(self):
        from repro.targets import get_target

        assert get_target("demo").binding_overrides == {}

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in (["targets"], ["kernels"], ["retarget", "demo"], ["compile", "demo"]):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        captured = capsys.readouterr()
        assert "usage" in captured.out.lower()


class TestCommands:
    def test_targets_lists_all_six(self, capsys):
        assert main(["targets"]) == 0
        output = capsys.readouterr().out
        for name in ("demo", "ref", "manocpu", "tanenbaum", "bass_boost", "tms320c25"):
            assert name in output

    def test_kernels_lists_all_ten(self, capsys):
        assert main(["kernels"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") >= 10
        assert "fir" in output and "biquad_n" in output

    def test_retarget_builtin_target(self, capsys):
        assert main(["retarget", "bass_boost", "--templates", "--features"]) == 0
        output = capsys.readouterr().out
        assert "Retargeting report" in output
        assert "ACC := add(ACC, mul(XREG, CROM))" in output
        assert "fixed-point" in output

    def test_retarget_bnf(self, capsys):
        assert main(["retarget", "manocpu", "--bnf"]) == 0
        output = capsys.readouterr().out
        assert "%start START" in output

    def test_retarget_hdl_file(self, tmp_path, capsys):
        from repro.targets import target_hdl_source

        hdl_file = tmp_path / "machine.hdl"
        hdl_file.write_text(target_hdl_source("demo"))
        assert main(["retarget", str(hdl_file)]) == 0
        assert "demo" in capsys.readouterr().out

    def test_retarget_unknown_target_fails(self):
        with pytest.raises(SystemExit):
            main(["retarget", "z80"])

    def test_compile_kernel(self, capsys):
        assert main(["compile", "tms320c25", "--kernel", "real_update", "--binary"]) == 0
        output = capsys.readouterr().out
        assert "code size: 4 instruction words" in output
        assert "100%" in output
        assert "IM:" in output

    def test_compile_kernel_with_baseline(self, capsys):
        assert main(["compile", "tms320c25", "--kernel", "real_update", "--baseline"]) == 0
        output = capsys.readouterr().out
        assert "code size: 5 instruction words" in output

    def test_compile_source_file(self, tmp_path, capsys):
        source = tmp_path / "prog.c"
        source.write_text("int a, b, c; c = a * b + c;")
        assert main(["compile", "tms320c25", str(source)]) == 0
        output = capsys.readouterr().out
        assert "instruction words" in output

    def test_compile_without_input_fails(self):
        with pytest.raises(SystemExit):
            main(["compile", "tms320c25"])

    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        output = capsys.readouterr().out
        for name in ("demo", "ref", "tms320c25"):
            assert name in output

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in (["targets"], ["kernels"], ["retarget", "demo"], ["compile", "demo"]):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        captured = capsys.readouterr()
        assert "usage" in captured.out.lower()


class TestCommands:
    def test_targets_lists_all_six(self, capsys):
        assert main(["targets"]) == 0
        output = capsys.readouterr().out
        for name in ("demo", "ref", "manocpu", "tanenbaum", "bass_boost", "tms320c25"):
            assert name in output

    def test_kernels_lists_all_ten(self, capsys):
        assert main(["kernels"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") >= 10
        assert "fir" in output and "biquad_n" in output

    def test_retarget_builtin_target(self, capsys):
        assert main(["retarget", "bass_boost", "--templates", "--features"]) == 0
        output = capsys.readouterr().out
        assert "Retargeting report" in output
        assert "ACC := add(ACC, mul(XREG, CROM))" in output
        assert "fixed-point" in output

    def test_retarget_bnf(self, capsys):
        assert main(["retarget", "manocpu", "--bnf"]) == 0
        output = capsys.readouterr().out
        assert "%start START" in output

    def test_retarget_hdl_file(self, tmp_path, capsys):
        from repro.targets import target_hdl_source

        hdl_file = tmp_path / "machine.hdl"
        hdl_file.write_text(target_hdl_source("demo"))
        assert main(["retarget", str(hdl_file)]) == 0
        assert "demo" in capsys.readouterr().out

    def test_retarget_unknown_target_fails(self):
        with pytest.raises(SystemExit):
            main(["retarget", "z80"])

    def test_compile_kernel(self, capsys):
        assert main(["compile", "tms320c25", "--kernel", "real_update", "--binary"]) == 0
        output = capsys.readouterr().out
        assert "code size: 4 instruction words" in output
        assert "100%" in output
        assert "IM:" in output

    def test_compile_kernel_with_baseline(self, capsys):
        assert main(["compile", "tms320c25", "--kernel", "real_update", "--baseline"]) == 0
        output = capsys.readouterr().out
        assert "code size: 5 instruction words" in output

    def test_compile_source_file(self, tmp_path, capsys):
        source = tmp_path / "prog.c"
        source.write_text("int a, b, c; c = a * b + c;")
        assert main(["compile", "tms320c25", str(source)]) == 0
        output = capsys.readouterr().out
        assert "instruction words" in output

    def test_compile_without_input_fails(self):
        with pytest.raises(SystemExit):
            main(["compile", "tms320c25"])

    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        output = capsys.readouterr().out
        for name in ("demo", "ref", "tms320c25"):
            assert name in output


class TestFuzzCommand:
    def test_fuzz_subcommand_exists(self):
        parser = build_parser()
        args = parser.parse_args(["fuzz", "--seed", "3", "--budget", "7",
                                  "--targets", "ref", "--oracle", "sim,opt"])
        assert args.command == "fuzz"
        assert args.seed == 3 and args.budget == 7

    def test_small_clean_campaign_exits_zero(self, capsys):
        code = main(["fuzz", "--seed", "0", "--budget", "2",
                     "--targets", "ref", "--oracle", "sim"])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "0 finding(s)" in captured.out

    def test_json_report_is_machine_readable(self, capsys):
        import json

        code = main(["fuzz", "--seed", "0", "--budget", "1",
                     "--targets", "ref", "--oracle", "opt", "--json"])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        report = json.loads(captured.out)
        assert report["budget"] == 1
        assert report["divergences"] == 0 and report["crashes"] == 0

    def test_unknown_oracle_is_a_structured_cli_error(self):
        with pytest.raises(SystemExit, match="unknown oracle"):
            main(["fuzz", "--budget", "1", "--oracle", "santa"])


class TestCrashContract:
    """ISSUE 8: internal errors exit non-zero with one structured
    diagnostic line -- a raw traceback never reaches the user."""

    def test_injected_fault_exits_ex_software(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "select")
        code = main(["compile", "demo", "--kernel", "fir"])
        captured = capsys.readouterr()
        assert code == 70  # EX_SOFTWARE, distinct from user errors (1)
        assert captured.err.startswith("error: InternalCompilerError [internal]")
        assert "in pass 'select'" in captured.err
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out

    def test_fault_in_another_pass_is_also_wrapped(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECT_FAULT", "schedule")
        code = main(["compile", "demo", "--kernel", "fir"])
        captured = capsys.readouterr()
        assert code == 70
        assert "in pass 'schedule'" in captured.err

    def test_user_errors_keep_exit_code_one(self, monkeypatch, capsys):
        # The injected fault never fires for a non-matching pass name, and
        # ordinary structured errors stay on the user-error exit path.
        monkeypatch.setenv("REPRO_INJECT_FAULT", "select")
        code = main(["compile", "demo", "--kernel", "nosuchkernel"])
        assert code != 70

    def test_batch_surfaces_internal_errors_per_job(self, monkeypatch, tmp_path, capsys):
        import json

        monkeypatch.setenv("REPRO_INJECT_FAULT", "select")
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text('{"target": "demo", "kernel": "fir"}\n')
        code = main(["batch", str(jobs)])
        captured = capsys.readouterr()
        assert code == 1  # some job failed, but the batch completed
        response = json.loads(captured.out.splitlines()[0])
        assert not response["ok"]
        assert response["error"]["type"] == "InternalCompilerError"
        assert response["error"]["phase"] == "internal"
        assert "Traceback" not in captured.err

"""Unit tests for the code-generation backend (selection, scheduling,
spilling, compaction, emission)."""

import pytest

from repro.codegen import (
    CodeGenerationError,
    RTInstance,
    compact,
    format_listing,
    insert_spills,
    schedule_instances,
    select_block,
    select_statement,
)
from repro.codegen.compaction import code_size
from repro.codegen.selection import build_subject_tree
from repro.codegen.spill import count_spills
from repro.frontend import lower_to_program
from repro.ir import bind_program
from repro.selector.burs import CodeSelector


def _codes(result, compiler_source, program_source):
    """Helper: select code for a program on a retargeted processor."""
    program = lower_to_program(program_source)
    binding = bind_program(program, result.netlist)
    selector = CodeSelector(result.grammar)
    return program, select_block(program.single_block(), selector, binding)


class TestSubjectTrees:
    def test_labels_use_storage_names(self, tms_result):
        program = lower_to_program("int a, d; d = a + 3;")
        binding = bind_program(program, tms_result.netlist)
        subject = build_subject_tree(program.single_block().statements[0], binding)
        assert subject.label == "ASSIGN"
        assert subject.children[0].label == "DMEM"
        assert subject.children[1].label == "add"
        const_leaf = subject.children[1].children[1]
        assert const_leaf.label == "Const" and const_leaf.const_value == 3

    def test_port_destination(self, tms_result):
        from repro.ir.program import Statement
        from repro.ir.expr import VarRef

        program = lower_to_program("int a; a = a;")
        binding = bind_program(program, tms_result.netlist)
        statement = Statement("@POUT", VarRef("a"))
        subject = build_subject_tree(statement, binding)
        assert subject.children[0].label == "POUT"


class TestSelection:
    def test_real_update_cover(self, tms_result):
        _program, codes = _codes(tms_result, None, "int a, b, c, d; d = c + a * b;")
        assert len(codes) == 1
        code = codes[0]
        assert code.cost == 4  # LAC, LT, MAC, SACL
        assert len(code.instances) == 4
        assert all(instance.kind == "rt" for instance in code.instances)

    def test_defines_variable_on_final_instance(self, tms_result):
        _program, codes = _codes(tms_result, None, "int a, b, d; d = a + b;")
        defining = [i for i in codes[0].instances if i.defines_variable == "d"]
        assert len(defining) == 1
        assert defining[0].result_storage == "DMEM"

    def test_uncoverable_statement_raises(self, demo_result):
        # demo has no divider, so a division cannot be covered
        with pytest.raises(CodeGenerationError):
            _codes(demo_result, None, "int a, b, d; d = a / b;")

    def test_chained_templates_reduce_cost(self, tms_result):
        _program, with_mac = _codes(tms_result, None, "int a, b, c, d; d = c + a * b;")
        from repro.ise.templates import RTTemplateBase
        from repro.grammar.construct import build_tree_grammar

        restricted = RTTemplateBase(processor="tms320c25")
        for template in tms_result.template_base:
            if not template.is_chained():
                restricted.add(template)
        grammar = build_tree_grammar(tms_result.netlist, restricted)
        program = lower_to_program("int a, b, c, d; d = c + a * b;")
        binding = bind_program(program, tms_result.netlist)
        codes = select_block(program.single_block(), CodeSelector(grammar), binding)
        assert codes[0].cost > with_mac[0].cost

    def test_instance_describe(self, tms_result):
        _program, codes = _codes(tms_result, None, "int a, b, d; d = a + b;")
        description = codes[0].instances[-1].describe()
        assert ":=" in description


class TestScheduling:
    def _instance(self, result_id, storage, operands=()):
        return RTInstance(
            kind="rt",
            result_id=result_id,
            result_storage=storage,
            operands=list(operands),
        )

    def test_dependencies_are_preserved(self):
        a = self._instance("tmp:0", "ACC")
        b = self._instance("tmp:1", "T", [("tmp:0", "ACC")])
        c = self._instance("tmp:2", "ACC", [("tmp:1", "T")])
        order = schedule_instances([c, b, a])  # deliberately scrambled? no: deps broken
        # scheduling never reorders against data dependencies
        order = schedule_instances([a, b, c])
        assert [i.result_id for i in order] == ["tmp:0", "tmp:1", "tmp:2"]

    def test_clobber_avoidance(self):
        # two independent computations, one of which would clobber a live ACC
        first = self._instance("tmp:0", "ACC")
        clobber = self._instance("tmp:1", "ACC")
        use_first = self._instance("tmp:2", "DMEM", [("tmp:0", "ACC")])
        use_second = self._instance("tmp:3", "DMEM", [("tmp:1", "ACC")])
        order = schedule_instances([first, clobber, use_first, use_second])
        ids = [i.result_id for i in order]
        # the use of tmp:0 must come before tmp:1 overwrites ACC
        assert ids.index("tmp:2") < ids.index("tmp:1")

    def test_single_instance_passthrough(self):
        only = self._instance("tmp:0", "ACC")
        assert schedule_instances([only]) == [only]

    def test_empty_sequence(self):
        assert schedule_instances([]) == []


class TestSpilling:
    def _instance(self, result_id, storage, operands=()):
        return RTInstance(
            kind="rt",
            result_id=result_id,
            result_storage=storage,
            operands=list(operands),
        )

    def test_no_spills_when_no_clobbering(self):
        a = self._instance("tmp:0", "ACC")
        b = self._instance("tmp:1", "DMEM", [("tmp:0", "ACC")])
        sequence = insert_spills([a, b], "DMEM")
        assert count_spills(sequence) == 0

    def test_spill_and_reload_inserted(self):
        produce = self._instance("tmp:0", "ACC")
        clobber = self._instance("tmp:1", "ACC")
        consume_clobbered = self._instance("tmp:2", "DMEM", [("tmp:1", "ACC")])
        consume_original = self._instance("tmp:3", "DMEM", [("tmp:0", "ACC")])
        sequence = insert_spills([produce, clobber, consume_clobbered, consume_original], "DMEM")
        kinds = [i.kind for i in sequence]
        assert "spill_store" in kinds
        assert "spill_reload" in kinds
        assert count_spills(sequence) == 2

    def test_no_spill_storage_means_no_insertion(self):
        produce = self._instance("tmp:0", "ACC")
        clobber = self._instance("tmp:1", "ACC")
        use = self._instance("tmp:2", "DMEM", [("tmp:0", "ACC")])
        sequence = insert_spills([produce, clobber, use], None)
        assert count_spills(sequence) == 0

    def test_empty_sequence(self):
        assert insert_spills([], "DMEM") == []


class TestCompaction:
    def test_disabled_compaction_is_one_rt_per_word(self, tms_result, tms_compiler):
        _program, codes = _codes(tms_result, None, "int a, b, c, d; d = c + a * b;")
        instances = [i for code in codes for i in code.instances]
        words = compact(instances, enabled=False)
        assert code_size(words) == len(instances)

    def test_compaction_never_increases_code_size(self, tms_result):
        _program, codes = _codes(
            tms_result, None, "int a, b, c, d, e; d = c + a * b; e = d + c;"
        )
        instances = [i for code in codes for i in code.instances]
        assert code_size(compact(instances, enabled=True)) <= code_size(
            compact(instances, enabled=False)
        )

    def test_dependent_rts_are_not_packed_together(self, tms_result):
        _program, codes = _codes(tms_result, None, "int a, b, d; d = a + b;")
        instances = codes[0].instances
        words = compact(instances, enabled=True)
        for word in words:
            for consumer in word.instances:
                for producer in word.instances:
                    if producer is consumer:
                        continue
                    assert producer.result_id not in consumer.reads()
                    assert producer.result_storage != consumer.result_storage

    def test_conditions_of_packed_words_are_satisfiable(self, tms_result):
        _program, codes = _codes(tms_result, None, "int a, b, c, d; d = c + a * b;")
        instances = [i for code in codes for i in code.instances]
        for word in compact(instances, enabled=True):
            assert word.condition is None or word.condition.satisfiable()


class TestEmitter:
    def test_listing_format(self, tms_result):
        _program, codes = _codes(tms_result, None, "int a, b, c, d; d = c + a * b;")
        instances = [i for code in codes for i in code.instances]
        words = compact(instances)
        listing = format_listing(words, title="real_update")
        assert "real_update" in listing
        assert "bits:" in listing
        assert listing.count(":=") >= len(instances)

"""Control flow through the whole pipeline: parsing, CFG lowering,
optimization, backend code generation and RT-level simulation."""

import pytest

from repro.frontend import IfStatement, WhileStatement, parse_source
from repro.frontend.lowering import lower_to_program
from repro.ir.expr import ArrayRef, Const, Op, VarRef
from repro.ir.program import CBranch, Jump, MultiBlockError, StepLimitError
from repro.opt import optimize_program
from repro.toolchain import PipelineConfig, Session

DOT_LOOP = """
int a[4], b[4], z, i;
z = 0;
i = 0;
while (i < 4) {
    z = z + a[i] * b[i];
    i = i + 1;
}
"""


def _dot_env():
    env = {("a[%d]" % k): k + 1 for k in range(4)}
    env.update({("b[%d]" % k): 3 for k in range(4)})
    return env


class TestParsing:
    def test_if_else_parses(self):
        program = parse_source("int a, b; if (a < b) { a = b; } else { b = a; }")
        (statement,) = program.statements
        assert isinstance(statement, IfStatement)
        assert len(statement.then_body) == 1 and len(statement.else_body) == 1

    def test_while_parses(self):
        program = parse_source("int i; while (i < 4) i = i + 1;")
        (statement,) = program.statements
        assert isinstance(statement, WhileStatement)
        assert statement.test_first

    def test_do_while_parses(self):
        program = parse_source("int i; do { i = i + 1; } while (i < 4);")
        (statement,) = program.statements
        assert isinstance(statement, WhileStatement)
        assert not statement.test_first

    def test_nested_control_flow_parses(self):
        source = """
        int i, j, s;
        while (i < 3) {
            j = 0;
            while (j < 3) {
                if (j == i) { s = s + 1; }
                j = j + 1;
            }
            i = i + 1;
        }
        """
        program = parse_source(source)
        assert isinstance(program.statements[0], WhileStatement)

    def test_assignments_property_keeps_straight_line_view(self):
        program = parse_source("int a, b; a = b + 1; b = a;")
        assert len(program.assignments) == 2
        assert program.is_straight_line()

    def test_unterminated_block_rejected(self):
        from repro.frontend import SourceSyntaxError

        with pytest.raises(SourceSyntaxError):
            parse_source("int i; while (i < 3) { i = i + 1;")


class TestLoweringCFG:
    def test_straight_line_stays_single_block(self):
        program = lower_to_program("int a, b; a = b + 1;")
        assert program.is_straight_line()
        assert program.blocks[0].terminator is None

    def test_while_lowering_shape(self):
        program = lower_to_program(DOT_LOOP, name="dot")
        names = [block.name for block in program.blocks]
        assert names[0] == "entry"
        assert len(names) == 4  # entry, header, body, exit
        header = program.blocks[1]
        assert isinstance(header.terminator, CBranch)
        body = program.block(header.terminator.true_target)
        assert isinstance(body.terminator, Jump)
        assert body.terminator.target == header.name
        assert program.successors(header.name) == header.terminator.targets()

    def test_if_else_lowering_shape(self):
        program = lower_to_program(
            "int x, y; if (x == 0) { y = x + 1; } else { y = x - 1; }"
        )
        entry = program.blocks[0]
        assert isinstance(entry.terminator, CBranch)
        then_block = program.block(entry.terminator.true_target)
        else_block = program.block(entry.terminator.false_target)
        assert isinstance(then_block.terminator, Jump)
        assert then_block.terminator.target == else_block.terminator.target

    def test_dynamic_index_lowering(self):
        program = lower_to_program("int a[4], i; a[i] = a[i + 1] + 1;")
        statement = program.single_block().statements[0]
        assert statement.destination == "a"
        assert statement.destination_index == VarRef("i")
        assert isinstance(statement.expression, Op)
        load = statement.expression.operands[0]
        assert isinstance(load, ArrayRef)
        assert load.index == Op("add", (VarRef("i"), Const(1)))

    def test_reference_execution_runs_loop(self):
        program = lower_to_program(DOT_LOOP, name="dot")
        out = program.execute(_dot_env())
        assert out["z"] == 30 and out["i"] == 4

    def test_step_limit_raises(self):
        program = lower_to_program("int i; i = 0; while (i < 9) { i = i * 1; }")
        with pytest.raises(StepLimitError):
            program.execute({}, max_steps=200)

    def test_single_block_raises_structured_error_on_cfg(self):
        program = lower_to_program(DOT_LOOP)
        with pytest.raises(MultiBlockError):
            program.single_block()
        # Historical callers catch ValueError; the structured error still is one.
        with pytest.raises(ValueError):
            program.single_block()

    def test_unsigned_comparison_semantics(self):
        # Environment values are word-wrapped (unsigned); comparisons too.
        program = lower_to_program("int a, y; y = 0; if (a < 3) { y = 1; }")
        assert program.execute({"a": -1})["y"] == 0  # 0xFFFF is not < 3


class TestOptimizerOnCFG:
    def test_optimizer_preserves_cfg_observables(self):
        program = lower_to_program(DOT_LOOP, name="dot")
        optimized, stats = optimize_program(program)
        env = _dot_env()
        assert optimized.execute(dict(env))["z"] == program.execute(dict(env))["z"]
        # The counted while-loop is rotated: the empty L1_while header is
        # folded into the latch, which now carries the condition.
        assert [b.name for b in optimized.blocks] == [
            "entry",
            "L2_body",
            "L3_endwhile",
        ]
        assert stats.loops_rotated == 1
        assert stats.statements_before == stats.statements_after

    def test_fold_works_per_block(self):
        program = lower_to_program(
            "int i, z; z = 2 * 8; while (i < 4) { i = i + (3 - 2); }"
        )
        optimized, stats = optimize_program(program)
        assert stats.folds >= 2
        assert optimized.blocks[0].statements[0].expression == Const(16)

    def test_dce_conservative_across_blocks(self):
        # __cse-style temp defined in one block, read in a later block:
        # the CFG-conservative DCE must keep it.
        from repro.ir.program import BasicBlock, Jump, Program, Statement
        from repro.opt.cse import eliminate_dead_temporaries

        program = Program(
            name="x",
            blocks=[
                BasicBlock(
                    name="entry",
                    statements=[Statement("__cse0", Op("add", (VarRef("a"), VarRef("b"))))],
                    terminator=Jump("next"),
                ),
                BasicBlock(
                    name="next",
                    statements=[Statement("y", VarRef("__cse0"))],
                ),
            ],
            scalars=["a", "b", "y", "__cse0"],
        )
        cleaned = eliminate_dead_temporaries(program)
        assert len(cleaned.blocks[0].statements) == 1

    def test_dce_removes_never_read_temp_in_cfg(self):
        from repro.ir.program import BasicBlock, Jump, Program, Statement
        from repro.opt.cse import eliminate_dead_temporaries

        program = Program(
            name="x",
            blocks=[
                BasicBlock(
                    name="entry",
                    statements=[Statement("__cse0", VarRef("a"))],
                    terminator=Jump("next"),
                ),
                BasicBlock(name="next", statements=[Statement("y", VarRef("a"))]),
            ],
            scalars=["a", "y", "__cse0"],
        )
        cleaned = eliminate_dead_temporaries(program)
        assert cleaned.blocks[0].statements == []

    def test_branch_condition_counts_as_use(self):
        from repro.ir.program import BasicBlock, CBranch, Program, Statement
        from repro.opt.cse import eliminate_dead_temporaries

        program = Program(
            name="x",
            blocks=[
                BasicBlock(
                    name="entry",
                    statements=[Statement("__cse0", VarRef("a"))],
                    terminator=CBranch(
                        condition=VarRef("__cse0"),
                        true_target="next",
                        false_target="next",
                    ),
                ),
                BasicBlock(name="next", statements=[]),
            ],
            scalars=["a", "__cse0"],
        )
        cleaned = eliminate_dead_temporaries(program)
        assert len(cleaned.blocks[0].statements) == 1


class TestBackendCFG:
    @pytest.fixture(scope="class")
    def session(self, tms_result):
        return Session(tms_result)

    def test_compiles_and_simulates_loop(self, session):
        result = session.compile(DOT_LOOP, name="dot")
        assert result.is_multi_block
        out = result.simulate(_dot_env())
        assert out["z"] == 30 and out["i"] == 4

    def test_listing_has_labels_and_branches(self, session):
        result = session.compile(DOT_LOOP, name="dot")
        listing = result.listing()
        assert "entry:" in listing
        # Loop rotation removed the empty L1_while header; entry jumps
        # straight to the body, which conditionally branches to itself.
        assert "L2_body:" in listing
        assert "jump L2_body" in listing
        # On the tms320c25 the counted latch lowers to a zero-overhead
        # hardware loop instead of a per-iteration conditional branch.
        assert "repeat L2_body x4 then L3_endwhile" in listing

    def test_branches_pinned_at_block_ends(self, session):
        result = session.compile(DOT_LOOP, name="dot")
        for word in result.words:
            control = [i for i in word.instances if i.is_control()]
            if control:
                assert len(word.instances) == 1  # barrier: never packed

    def test_binary_encoding_of_cfg_program(self, tms_result):
        session = Session(tms_result, config=PipelineConfig(encode=True))
        result = session.compile(DOT_LOOP, name="dot")
        assert "L2_body:" in result.encoding

    def test_simulation_trace_records_blocks_and_iterations(self, session):
        result = session.compile(DOT_LOOP, name="dot")
        trace = result.simulation_trace(_dot_env())
        body_steps = [step for step in trace.steps if step.block == "L2_body"]
        assert len(body_steps) == 8  # 2 statements x 4 iterations
        assert trace.final_environment["z"] == 30

    def test_simulation_step_limit(self, session):
        from repro.sim.rtsim import SimulationError

        result = session.compile(
            "int i; i = 0; while (i < 9) { i = i * 1; }", name="spin"
        )
        with pytest.raises(SimulationError):
            result.simulate({}, max_steps=500)

    def test_if_else_both_paths(self, session):
        result = session.compile(
            "int x, y, lim; if (x > lim) { y = lim; } else { y = x; }",
            name="clip",
        )
        assert result.simulate({"x": 9, "lim": 5})["y"] == 5
        assert result.simulate({"x": 2, "lim": 5})["y"] == 2

    def test_do_while_runs_at_least_once(self, session):
        result = session.compile(
            "int i, n; i = 0; do { i = i + 1; } while (i < n);", name="dw"
        )
        assert result.simulate({"n": 0})["i"] == 1
        assert result.simulate({"n": 3})["i"] == 3

    def test_dynamic_store_through_backend(self, session):
        result = session.compile(
            "int d[4], c[4], i; i = 0; while (i < 4) { d[i] = c[i] + 1; i = i + 1; }",
            name="upd",
        )
        env = {("c[%d]" % k): 10 * k for k in range(4)}
        out = result.simulate(env)
        assert [out["d[%d]" % k] for k in range(4)] == [1, 11, 21, 31]

    def test_spill_metric_not_inflated_by_branches(self, session):
        result = session.compile(DOT_LOOP, name="dot")
        assert result.spill_count == 0
        assert not any(d.message.startswith("storage pressure")
                       for d in result.diagnostics)

    def test_statement_count_excludes_branch_pseudocode(self, session):
        result = session.compile(DOT_LOOP, name="dot")
        assert result.metrics.statement_count == 4  # z=0; i=0; body: z,i

    def test_no_opt_preset_handles_cfg(self, tms_result):
        session = Session(tms_result, config=PipelineConfig.preset("no-opt"))
        out = session.compile(DOT_LOOP, name="dot").simulate(_dot_env())
        assert out["z"] == 30

    def test_constant_store_legalization_on_demo(self, demo_result):
        # demo has no immediate-to-storage path: "z = 0" legalizes to
        # "z = z - z" and still simulates correctly.
        session = Session(demo_result)
        result = session.compile(DOT_LOOP, name="dot")
        out = result.simulate(_dot_env())
        assert out["z"] == 30

    def test_straight_line_simulation_rejects_cfg_code(self, session):
        """The straight-line paths must fail loudly on a CFG's flat code
        (e.g. a legacy CompiledProgram wrapper without block_codes),
        never silently execute each block once in layout order."""
        from repro.record.compiler import CompiledProgram
        from repro.sim.rtsim import SimulationError

        result = session.compile(DOT_LOOP, name="dot")
        legacy = CompiledProgram(
            result.program,
            "tms320c25",
            statement_codes=result.statement_codes,
            words=result.words,
            binding=result.binding,
        )
        assert not legacy.is_multi_block  # shim never carries block_codes
        with pytest.raises(SimulationError):
            legacy.simulate(_dot_env())
        # The shim's statement metric matches the session API's.
        assert legacy.metrics.statement_count == result.metrics.statement_count

    def test_json_roundtrip_of_cfg_result(self, session):
        from repro.toolchain.results import CompilationResult

        result = session.compile(DOT_LOOP, name="dot")
        detached = CompilationResult.from_json(result.to_json())
        assert detached.metrics == result.metrics
        assert "L2_body:" in detached.listing()

"""Replay of the fuzzing regression corpus (tests/corpus/*.json).

Every corpus entry is a minimized finding from a past campaign (or a
hand-promoted regression program).  Replaying one means re-running its
recorded oracle on its reproducer: the entry's divergence or crash must
stay fixed, i.e. every (oracle, target) combination must now come back
as agreement or a structured skip.  New findings are promoted with
``repro fuzz --promote tests/corpus``.
"""

import pathlib

import pytest

from repro.frontend.lowering import lower_to_program
from repro.fuzz import load_corpus
from repro.fuzz.campaign import DSP_TARGETS, _run_oracle, program_hash
from repro.fuzz.oracles import ORACLES, seed_environment

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = load_corpus(CORPUS_DIR)


def _entry_id(finding) -> str:
    return "%s-%s-%s-%s" % (
        finding.kind, finding.oracle, finding.target, finding.hash
    )


def test_corpus_is_not_empty():
    assert CORPUS, "the regression corpus disappeared"


def test_corpus_hashes_match_their_sources():
    for finding in CORPUS:
        assert finding.hash == program_hash(finding.source), _entry_id(finding)


@pytest.mark.parametrize("finding", CORPUS, ids=_entry_id)
def test_replay_stays_fixed(finding, fuzz_harnesses):
    program = lower_to_program(finding.reproducer, name="corpus")
    environment = seed_environment(program)
    oracles = [finding.oracle] if finding.oracle in ORACLES else sorted(ORACLES)
    targets = list(DSP_TARGETS) if finding.target == "*" else [finding.target]
    replayed = 0
    for target in targets:
        harness = fuzz_harnesses[target]
        for oracle in oracles:
            kind, payload = _run_oracle(
                ORACLES[oracle], harness, program, environment
            )
            assert kind in ("ok", "skip"), (
                "corpus entry %s regressed on %s/%s: %s"
                % (_entry_id(finding), target, oracle, payload)
            )
            replayed += 1
    assert replayed

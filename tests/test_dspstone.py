"""Tests of the DSPStone kernel collection."""

import pytest

from repro.dspstone import (
    FIGURE2_ORDER,
    LOOP_KERNELS,
    all_kernel_names,
    get_kernel,
    kernel_program,
    loop_kernel_names,
)
from repro.frontend import parse_source


class TestKernelCollection:
    def test_ten_kernels_in_figure2_order(self):
        names = all_kernel_names()
        assert len(names) == 10
        assert names == FIGURE2_ORDER
        assert names[0] == "real_update"
        assert "fir" in names and "convolution" in names

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            get_kernel("fft")

    def test_kernel_sources_parse(self):
        for name in all_kernel_names():
            kernel = get_kernel(name)
            program = parse_source(kernel.source, name=name)
            assert program.assignments, name

    def test_kernel_programs_lower(self):
        for name in all_kernel_names():
            program = kernel_program(name)
            assert program.name == name
            assert program.statement_count() >= 1

    def test_descriptions_present(self):
        for name in all_kernel_names():
            assert get_kernel(name).description


class TestKernelShapes:
    def test_real_update_is_single_statement(self):
        assert kernel_program("real_update").statement_count() == 1

    def test_complex_kernels_have_two_components(self):
        assert kernel_program("complex_multiply").statement_count() == 2
        assert kernel_program("complex_update").statement_count() == 2

    def test_parameterised_kernels_match_their_parameters(self):
        n_real = get_kernel("n_real_updates")
        assert kernel_program("n_real_updates").statement_count() == n_real.parameters["N"]
        fir = get_kernel("fir")
        program = kernel_program("fir")
        # single statement summing `taps` products
        assert program.statement_count() == 1
        assert len(program.arrays) == 2
        assert program.arrays["x"] == fir.parameters["taps"]

    def test_biquad_n_cascades_sections(self):
        kernel = get_kernel("biquad_n")
        program = kernel_program("biquad_n")
        assert program.statement_count() == 2 * kernel.parameters["sections"]

    def test_no_trivial_copy_statements(self):
        """Bare variable-to-variable copies would be covered at zero cost
        (both live in the same memory), which would distort the code-size
        experiment; the kernels must not contain any."""
        from repro.ir.expr import VarRef

        for name in all_kernel_names():
            program = kernel_program(name)
            for statement in program.single_block().statements:
                assert not isinstance(statement.expression, VarRef), (name, str(statement))

    def test_mac_dominated_kernels_use_multiplication(self):
        from repro.ir.expr import Op

        for name in ("fir", "convolution", "dot_product"):
            program = kernel_program(name)
            expression = program.single_block().statements[0].expression
            assert isinstance(expression, Op)

    def test_convolution_reverses_coefficients(self):
        kernel = get_kernel("convolution")
        assert "h[7]" in kernel.source and "x[0]" in kernel.source


class TestLoopKernels:
    def test_loop_kernel_collection(self):
        names = loop_kernel_names()
        assert names == LOOP_KERNELS
        assert "fir_loop" in names and "dot_product_loop" in names
        # The figure-2 collection is untouched by the loop forms.
        assert set(names).isdisjoint(all_kernel_names())

    def test_every_loop_kernel_names_an_unrolled_counterpart(self):
        for name in loop_kernel_names():
            kernel = get_kernel(name)
            assert kernel.unrolled in all_kernel_names(), name

    def test_loop_kernels_lower_to_cfgs(self):
        for name in loop_kernel_names():
            program = kernel_program(name)
            assert not program.is_straight_line(), name
            assert len(program.blocks) >= 3, name

    def test_loop_kernels_match_unrolled_reference_execution(self):
        for name in loop_kernel_names():
            kernel = get_kernel(name)
            loop_program = kernel_program(name)
            unrolled_program = kernel_program(kernel.unrolled)
            environment = {}
            for array, size in sorted(loop_program.arrays.items()):
                for index in range(size):
                    environment["%s[%d]" % (array, index)] = index * 7 + 3
            loop_out = loop_program.execute(dict(environment))
            unrolled_out = unrolled_program.execute(dict(environment))
            for key in unrolled_program.all_variables():
                if key in loop_out:
                    assert loop_out[key] == unrolled_out.get(key, 0), (name, key)

    def test_trip_counts_documented(self):
        for name in loop_kernel_names():
            assert get_kernel(name).parameters, name

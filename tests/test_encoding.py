"""Unit tests for binary instruction encoding."""

import pytest

from repro.codegen.compaction import compact
from repro.codegen.encoding import EncodedWord, InstructionEncoder


@pytest.fixture()
def encoder(tms_result):
    return InstructionEncoder(tms_result.netlist)


def _compiled_words(compiler, source):
    return compiler.compile_source(source).words


class TestEncodedWord:
    def test_bit_access_and_rendering(self):
        word = EncodedWord(memory="IM", width=4, value=0b1010, care_mask=0b1110)
        assert word.bit(0) is None
        assert word.bit(1) == 1
        assert word.bit(2) == 0
        assert word.bit(3) == 1
        assert word.render() == "101-"

    def test_all_dont_care(self):
        word = EncodedWord(memory="IM", width=3, value=0, care_mask=0)
        assert word.render() == "---"
        assert all(word.bit(i) is None for i in range(3))


class TestInstructionEncoder:
    def test_instruction_width(self, encoder):
        assert encoder.instruction_width == 16

    def test_encode_template_assignment(self, tms_result, encoder):
        templates = {t.render(): t for t in tms_result.extraction.template_base}
        lac = templates["ACC := DMEM"]
        encoded = encoder.encode_assignment(lac.partial_instruction())
        assert len(encoded) == 1
        word = encoded[0]
        # The opcode field (bits 15..12) must be fully constrained...
        assert all(word.bit(i) is not None for i in range(12, 16))
        # ... and the address field left as don't-cares.
        assert all(word.bit(i) is None for i in range(0, 8))

    def test_opcode_fields_differ_between_instructions(self, tms_result, encoder):
        templates = {t.render(): t for t in tms_result.extraction.template_base}
        def opcode(render):
            word = encoder.encode_assignment(templates[render].partial_instruction())[0]
            return tuple(word.bit(i) for i in range(12, 16))

        assert opcode("ACC := DMEM") != opcode("TREG := DMEM")
        assert opcode("ACC := add(ACC, DMEM)") != opcode("ACC := sub(ACC, DMEM)")

    def test_encode_program_words(self, tms_compiler, encoder):
        words = _compiled_words(tms_compiler, "int a, b, c, d; d = c + a * b;")
        encoded = encoder.encode_program(words)
        assert len(encoded) == len(words)
        for per_memory in encoded:
            assert len(per_memory) == 1
            assert per_memory[0].width == 16

    def test_encoded_bits_are_consistent_with_conditions(self, tms_compiler, encoder):
        words = _compiled_words(tms_compiler, "int a, b, d; d = a * b;")
        for word in words:
            assignment = word.partial_instruction()
            encoded = encoder.encode_word(word)[0]
            for name, value in assignment.items():
                if not name.startswith("IM.word["):
                    continue
                index = int(name[len("IM.word[") : -1])
                assert encoded.bit(index) == int(value)

    def test_listing(self, tms_compiler, encoder):
        words = _compiled_words(tms_compiler, "int a, b, d; d = a + b;")
        listing = encoder.listing(words)
        assert listing.count("IM:") == len(words)
        assert "-" in listing

    def test_demo_encoder(self, demo_result, demo_compiler):
        encoder = InstructionEncoder(demo_result.netlist)
        assert encoder.instruction_width == 16
        words = demo_compiler.compile_source("int a, b, d; d = a + b;").words
        assert encoder.encode_program(words)

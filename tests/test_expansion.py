"""Unit tests for template-base expansion (commutativity + rewrite rules)."""

from repro.bdd import BDDManager
from repro.expansion import (
    ExpansionOptions,
    RewriteRule,
    apply_rewrite_rules,
    default_transformation_library,
    expand_commutative,
    expand_template_base,
    identity_rules,
)
from repro.expansion.commutativity import swap_variants
from repro.expansion.rewrite import Slot
from repro.ise import ConstLeaf, OpNode, RTTemplate, RTTemplateBase, RegLeaf


def _template(pattern, destination="ACC"):
    manager = BDDManager()
    return RTTemplate(destination, pattern, manager.true)


class TestCommutativity:
    def test_simple_swap(self):
        pattern = OpNode("add", (RegLeaf("A"), RegLeaf("B")))
        variants = swap_variants(pattern)
        assert [str(v) for v in variants] == ["add(B, A)"]

    def test_non_commutative_operator_has_no_variants(self):
        pattern = OpNode("sub", (RegLeaf("A"), RegLeaf("B")))
        assert swap_variants(pattern) == []

    def test_identical_operands_have_no_variants(self):
        pattern = OpNode("add", (RegLeaf("A"), RegLeaf("A")))
        assert swap_variants(pattern) == []

    def test_nested_swaps(self):
        pattern = OpNode("add", (RegLeaf("C"), OpNode("mul", (RegLeaf("A"), RegLeaf("B")))))
        rendered = {str(v) for v in swap_variants(pattern)}
        assert "add(mul(A, B), C)" in rendered
        assert "add(C, mul(B, A))" in rendered
        assert "add(mul(B, A), C)" in rendered
        assert len(rendered) == 3

    def test_unary_operators_pass_through(self):
        pattern = OpNode("neg", (OpNode("add", (RegLeaf("A"), RegLeaf("B"))),))
        rendered = {str(v) for v in swap_variants(pattern)}
        assert rendered == {"neg(add(B, A))"}

    def test_expand_commutative_preserves_destination_and_condition(self):
        template = _template(OpNode("add", (RegLeaf("A"), RegLeaf("B"))), destination="X")
        additions = expand_commutative([template])
        assert len(additions) == 1
        assert additions[0].destination == "X"
        assert additions[0].origin == "commutativity"
        assert additions[0].condition == template.condition


class TestRewriteRules:
    def test_sub_via_add_neg(self):
        rule = next(r for r in default_transformation_library() if r.name == "sub_via_add_neg")
        template = _template(OpNode("add", (RegLeaf("A"), OpNode("neg", (RegLeaf("B"),)))))
        rewritten = rule.apply(template)
        assert rewritten is not None
        assert str(rewritten.pattern) == "sub(A, B)"
        assert rewritten.origin == "rewrite:sub_via_add_neg"

    def test_rule_does_not_match_other_shapes(self):
        rule = next(r for r in default_transformation_library() if r.name == "sub_via_add_neg")
        template = _template(OpNode("add", (RegLeaf("A"), RegLeaf("B"))))
        assert rule.apply(template) is None

    def test_repeated_slots_require_equal_subpatterns(self):
        rule = next(r for r in default_transformation_library() if r.name == "mul2_via_add")
        matching = _template(OpNode("add", (RegLeaf("A"), RegLeaf("A"))))
        not_matching = _template(OpNode("add", (RegLeaf("A"), RegLeaf("B"))))
        assert rule.apply(matching) is not None
        assert rule.apply(not_matching) is None

    def test_constant_leaf_in_schema_matches_exact_value(self):
        rule = next(r for r in default_transformation_library() if r.name == "neg_via_sub_zero")
        matching = _template(OpNode("sub", (ConstLeaf(0), RegLeaf("A"))))
        not_matching = _template(OpNode("sub", (ConstLeaf(1), RegLeaf("A"))))
        assert str(rule.apply(matching).pattern) == "neg(A)"
        assert rule.apply(not_matching) is None

    def test_identity_rules_match_everything(self):
        rules = identity_rules()
        template = _template(RegLeaf("A"))
        results = apply_rewrite_rules([template], rules)
        rendered = {str(t.pattern) for t in results}
        assert rendered == {"mul(A, #1)", "add(A, #0)"}

    def test_custom_rule(self):
        x = Slot(0)
        rule = RewriteRule(
            name="double_neg",
            hardware_schema=x,
            source_schema=OpNode("neg", (OpNode("neg", (x,)),)),
        )
        template = _template(RegLeaf("R"))
        rewritten = rule.apply(template)
        assert str(rewritten.pattern) == "neg(neg(R))"


class TestExpander:
    def _base(self):
        base = RTTemplateBase(processor="p")
        base.add(_template(OpNode("add", (RegLeaf("ACC"), RegLeaf("MEM")))))
        base.add(_template(OpNode("sub", (RegLeaf("ACC"), RegLeaf("MEM")))))
        base.add(_template(RegLeaf("MEM")))
        return base

    def test_default_expansion_adds_commutative_variants(self):
        extended = expand_template_base(self._base())
        rendered = {str(t.pattern) for t in extended}
        assert "add(MEM, ACC)" in rendered
        assert len(extended) > 3

    def test_expansion_is_duplicate_free(self):
        extended = expand_template_base(self._base())
        keys = {(t.destination, str(t.pattern), t.condition.node) for t in extended}
        assert len(keys) == len(extended)

    def test_commutativity_can_be_disabled(self):
        options = ExpansionOptions(use_commutativity=False, use_rewrite_rules=False)
        extended = expand_template_base(self._base(), options)
        assert len(extended) == 3

    def test_rewrites_can_be_disabled(self):
        options = ExpansionOptions(use_rewrite_rules=False)
        extended = expand_template_base(self._base(), options)
        assert all(not t.origin.startswith("rewrite") for t in extended)

    def test_custom_rule_list(self):
        x = Slot(0)
        rule = RewriteRule(
            name="lnot_twice",
            hardware_schema=x,
            source_schema=OpNode("lnot", (OpNode("lnot", (x,)),)),
        )
        options = ExpansionOptions(use_commutativity=False, rules=[rule])
        extended = expand_template_base(self._base(), options)
        rendered = {str(t.pattern) for t in extended}
        assert "lnot(lnot(MEM))" in rendered

    def test_originals_are_preserved(self):
        base = self._base()
        extended = expand_template_base(base)
        original_patterns = {str(t.pattern) for t in base}
        extended_patterns = {str(t.pattern) for t in extended}
        assert original_patterns <= extended_patterns

"""Unit tests for the source-language frontend."""

import pytest

from repro.frontend import (
    LoweringError,
    SourceSyntaxError,
    lower_to_program,
    parse_source,
    tokenize_source,
)
from repro.ir import Const, Op, VarRef


class TestLexer:
    def test_tokens(self):
        tokens = tokenize_source("int a; a = a + 1;")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert kinds[-1] == "eof"

    def test_comments(self):
        tokens = tokenize_source("// line comment\nint a; /* block\ncomment */ a = 1;")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts[0] == "int"
        assert "comment" not in texts

    def test_unterminated_block_comment(self):
        with pytest.raises(SourceSyntaxError):
            tokenize_source("/* never ends")

    def test_bad_character(self):
        with pytest.raises(SourceSyntaxError):
            tokenize_source("int a; a = $;")

    def test_bad_number(self):
        with pytest.raises(SourceSyntaxError):
            tokenize_source("a = 0z9;")

    def test_line_numbers(self):
        tokens = tokenize_source("int a;\na = 1;")
        assignment_token = [t for t in tokens if t.text == "="][0]
        assert assignment_token.line == 2


class TestParser:
    def test_declarations(self):
        program = parse_source("int a, b; int x[4];")
        assert [d.name for d in program.scalars] == ["a", "b"]
        assert program.arrays[0].name == "x" and program.arrays[0].size == 4
        assert program.declared_names() == ("a", "b", "x")

    def test_assignment_with_precedence(self):
        program = parse_source("int a, b, c, d; d = a + b * c;")
        expression = program.assignments[0].expression
        assert expression.operator == "+"
        assert expression.right.operator == "*"

    def test_array_target_and_operand(self):
        program = parse_source("int x[4], y[4]; y[1] = x[2];")
        assignment = program.assignments[0]
        assert assignment.target_name == "y"
        assert assignment.target_index is not None

    def test_unary_and_parentheses(self):
        program = parse_source("int a, b; a = -(a + b);")
        expression = program.assignments[0].expression
        assert expression.operator == "-"

    def test_missing_semicolon(self):
        with pytest.raises(SourceSyntaxError):
            parse_source("int a")

    def test_bad_expression(self):
        with pytest.raises(SourceSyntaxError):
            parse_source("int a; a = + ;")


class TestLowering:
    def test_simple_statement(self):
        program = lower_to_program("int a, b, c, d; d = c + a * b;", name="k")
        assert program.name == "k"
        block = program.single_block()
        assert len(block.statements) == 1
        statement = block.statements[0]
        assert statement.destination == "d"
        assert isinstance(statement.expression, Op)
        assert statement.expression.op == "add"

    def test_array_elements_become_named_variables(self):
        program = lower_to_program("int x[4], y; y = x[0] + x[3];")
        statement = program.single_block().statements[0]
        assert expr_names(statement.expression) == {"x[0]", "x[3]"}
        assert program.arrays == {"x": 4}

    def test_constant_index_arithmetic(self):
        program = lower_to_program("int x[8], y; y = x[2 + 3];")
        statement = program.single_block().statements[0]
        assert expr_names(statement.expression) == {"x[5]"}

    def test_operator_mapping(self):
        program = lower_to_program("int a, b; a = (a << 2) ^ (b >> 1) & ~b;")
        expression = program.single_block().statements[0].expression
        assert expression.op == "xor"

    def test_undeclared_scalar_rejected(self):
        with pytest.raises(LoweringError):
            lower_to_program("int a; a = zz;")

    def test_undeclared_array_rejected(self):
        with pytest.raises(LoweringError):
            lower_to_program("int a; a = x[0];")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(LoweringError):
            lower_to_program("int a; b = a;")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(LoweringError):
            lower_to_program("int x[2], a; a = x[5];")

    def test_non_constant_index_lowers_to_array_ref(self):
        from repro.ir.expr import ArrayRef, VarRef

        program = lower_to_program("int x[4], i, a; a = x[i];")
        expression = program.single_block().statements[0].expression
        assert isinstance(expression, ArrayRef)
        assert expression.name == "x"
        assert expression.index == VarRef("i")

    def test_negative_index_rejected(self):
        with pytest.raises(LoweringError):
            lower_to_program("int x[4], a; a = x[-1];")

    def test_execution_matches_source_semantics(self):
        program = lower_to_program("int a, b, c, d; d = c + a * b; c = d - a;")
        env = program.single_block().execute({"a": 2, "b": 3, "c": 4})
        assert env["d"] == 10
        assert env["c"] == 8


def expr_names(expression):
    names = set()
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, VarRef):
            names.add(node.name)
        elif isinstance(node, Const):
            pass
        else:
            stack.extend(node.children())
    return names

"""Regression tests for the frontend resource ceilings (ISSUE 8).

Adversarial inputs -- deeply nested expressions, thousand-term chains,
deeply nested blocks, huge programs -- must fail with a structured
:class:`ResourceLimitError` (phase ``limits``), never a
``RecursionError`` or a memory blow-up.
"""

import pytest

from repro.diagnostics import ReproError, ResourceLimitError
from repro.frontend import (
    DEFAULT_LIMITS,
    FrontendLimits,
    MAX_SOURCE_BYTES,
    parse_source,
    tokenize_source,
)
from repro.frontend.lowering import lower_to_program


class TestExpressionDepthLimit:
    def test_deep_parentheses_raise_structured_error(self):
        source = "int a, b; b = %s a %s;" % ("(" * 200, ")" * 200)
        with pytest.raises(ResourceLimitError, match="expression nesting"):
            parse_source(source)

    def test_deep_unary_chain_raises_structured_error(self):
        source = "int a, b; if (%s(a < b)) { b = a; }" % ("!" * 200)
        with pytest.raises(ResourceLimitError, match="expression nesting"):
            parse_source(source)

    def test_limit_is_configurable(self):
        shallow = FrontendLimits(max_expr_depth=4)
        ok = "int a, b; b = ((a));"
        too_deep = "int a, b; b = %s a %s;" % ("(" * 6, ")" * 6)
        parse_source(ok, limits=shallow)
        with pytest.raises(ResourceLimitError):
            parse_source(too_deep, limits=shallow)

    def test_error_is_a_repro_error_with_limits_phase(self):
        source = "int a, b; b = %s a %s;" % ("(" * 200, ")" * 200)
        with pytest.raises(ReproError) as excinfo:
            parse_source(source)
        assert excinfo.value.phase == "limits"


class TestExpressionNodeLimit:
    def test_thousand_term_chain_raises_structured_error(self):
        source = "int a, b; b = %s;" % " + ".join(["a"] * 2000)
        with pytest.raises(ResourceLimitError, match="nodes"):
            parse_source(source)

    def test_counter_resets_between_statements(self):
        # Many medium statements must not trip the per-statement cap.
        chain = " + ".join(["a"] * 100)
        source = "int a, b;\n" + "\n".join("b = %s;" % chain for _ in range(20))
        program = parse_source(source)
        assert len(program.statements) == 20


class TestBlockDepthLimit:
    def test_deeply_nested_ifs_raise_structured_error(self):
        depth = 200
        source = ["int a, b;"]
        source += ["if (a < b) {"] * depth
        source += ["b = a;"]
        source += ["}"] * depth
        with pytest.raises(ResourceLimitError, match="block nesting"):
            parse_source("\n".join(source))

    def test_nesting_within_the_limit_parses(self):
        depth = DEFAULT_LIMITS.max_block_depth - 1
        source = ["int a, b;"]
        source += ["if (a < b) {"] * depth
        source += ["b = a;"]
        source += ["}"] * depth
        program = parse_source("\n".join(source))
        assert program.statements


class TestProgramSizeLimits:
    def test_statement_flood_raises_structured_error(self):
        source = "int a, b;\n" + "b = a;\n" * 5000
        with pytest.raises(ResourceLimitError, match="statements"):
            parse_source(source)

    def test_oversized_source_is_rejected_before_lexing(self):
        with pytest.raises(ResourceLimitError, match="too large"):
            tokenize_source("b = a;" * (MAX_SOURCE_BYTES // 4))

    def test_oversized_source_is_rejected_through_lowering(self):
        source = "int a, b;\n" + " " * MAX_SOURCE_BYTES + "b = a;\n"
        with pytest.raises(ResourceLimitError, match="too large"):
            lower_to_program(source, name="huge")

    def test_zero_disables_a_ceiling(self):
        unlimited = FrontendLimits(max_statements=0)
        source = "int a, b;\n" + "b = a;\n" * 5000
        program = parse_source(source, limits=unlimited)
        assert len(program.statements) == 5000


class TestSelectorSubjectCap:
    def test_runaway_ir_tree_fails_structurally(self):
        # Programs built through the IR API bypass the frontend caps;
        # the selector enforces its own ceiling before labelling.
        from repro.codegen.selection import MAX_SUBJECT_NODES, select_statement
        from repro.ir import Const, Op, Statement, VarRef

        expression = VarRef("a")
        for _ in range(MAX_SUBJECT_NODES):
            expression = Op(op="add", operands=(expression, Const(1)))
        statement = Statement(destination="b", expression=expression)
        with pytest.raises(ResourceLimitError, match="selector limit"):
            select_statement(statement, selector=None, binding=None)

"""Tests for the structured fuzzing subsystem (repro.fuzz).

Covers the generator's invariants (round-trip, determinism,
termination), the delta-debugging minimizer, outcome classification in
the campaign driver, and a small end-to-end campaign against every
DSPStone-capable target.
"""

import json

import pytest

from repro.diagnostics import InternalCompilerError
from repro.frontend.lowering import lower_to_program
from repro.frontend.parser import parse_source
from repro.fuzz import (
    Finding,
    GeneratorConfig,
    ddmin,
    generate_program,
    generate_source,
    load_corpus,
    minimize_source,
    render_source,
    run_campaign,
    save_finding,
)
from repro.fuzz.campaign import DSP_TARGETS, _run_oracle, program_hash
from repro.fuzz.oracles import (
    ORACLES,
    Divergence,
    OracleSkip,
    SIMULATION_STEP_LIMIT,
    seed_environment,
)

SEEDS = range(12)


# ---------------------------------------------------------------------------
# generator invariants
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_rendering_round_trips_to_an_equal_ast(self):
        # Full parenthesization means parse(render(ast)) == ast: the AST
        # does not represent parentheses, so nothing is lost either way.
        for seed in SEEDS:
            program = generate_program(seed)
            reparsed = parse_source(render_source(program))
            assert reparsed.statements == program.statements, "seed %d" % seed
            assert reparsed.scalars == program.scalars
            assert reparsed.arrays == program.arrays

    def test_same_seed_same_program(self):
        for seed in SEEDS:
            assert generate_source(seed) == generate_source(seed)

    def test_distinct_seeds_explore_distinct_programs(self):
        sources = {generate_source(seed) for seed in range(40)}
        assert len(sources) == 40

    def test_every_program_lowers_and_terminates(self):
        # Loops only appear as the bounded induction pattern, so
        # reference execution must halt far below the simulator budget.
        for seed in SEEDS:
            program = lower_to_program(generate_source(seed), name="t%d" % seed)
            environment = seed_environment(program)
            result = program.execute(dict(environment), max_steps=SIMULATION_STEP_LIMIT)
            assert isinstance(result, dict)

    def test_default_palette_omits_uncovered_operators(self):
        # No built-in target covers shifts or unary -/~; by default the
        # generator must not emit them (a single occurrence would skip
        # every differential check for that program).
        for seed in range(30):
            source = generate_source(seed)
            assert "~" not in source
            assert "<<" not in source and ">>" not in source
            assert "/" not in source and "%" not in source

    def test_config_knobs_reenable_rare_operators(self):
        config = GeneratorConfig(unary_probability=0.9, shift_probability=0.5)
        sources = [generate_source(seed, config=config) for seed in range(20)]
        assert any("~" in s or "-(" in s for s in sources)
        assert any("<<" in s or ">>" in s for s in sources)

    def test_loop_bodies_never_write_induction_variables(self):
        for seed in SEEDS:
            for line in generate_source(seed).splitlines():
                stripped = line.strip()
                if stripped.startswith("i") and "=" in stripped:
                    variable, _, rest = stripped.partition("=")
                    variable = variable.strip()
                    if variable.startswith("i") and variable[1:].isdigit():
                        # only "i = 0;" and "i = (i) + (1);" may write it
                        rest = rest.strip().rstrip(";")
                        assert rest in ("0", "(%s) + (1)" % variable), line


# ---------------------------------------------------------------------------
# the delta debugger
# ---------------------------------------------------------------------------


class TestDdmin:
    def test_isolates_a_minimal_failing_pair(self):
        culprits = {3, 7}
        result = ddmin(list(range(10)), lambda items: culprits <= set(items))
        assert sorted(result) == [3, 7]

    def test_isolates_a_single_culprit(self):
        result = ddmin(list(range(64)), lambda items: 42 in items)
        assert result == [42]

    def test_result_always_satisfies_the_predicate_under_tiny_budget(self):
        predicate = lambda items: {1, 30, 60} <= set(items)
        result = ddmin(list(range(64)), predicate, budget=10)
        assert predicate(result)


class TestMinimizeSource:
    def test_shrinks_to_the_needle_statement(self):
        source = generate_source(5)
        needle = "v0 = (v1) + (1);"
        source = source.rstrip() + "\n" + needle + "\n"

        seen = []

        def predicate(candidate: str) -> bool:
            # Every candidate the minimizer proposes must be parseable
            # (it works on the source AST, not on text).
            parse_source(candidate)
            seen.append(candidate)
            return needle in candidate

        minimized = minimize_source(source, predicate)
        assert needle in minimized
        assert len(minimized) < len(source) / 2
        assert seen, "minimizer never evaluated a candidate"
        parse_source(minimized)

    def test_unshrinkable_input_comes_back_unchanged(self):
        source = "int v0, v1;\nv0 = (v1) + (1);\n"
        minimized = minimize_source(source, lambda candidate: False)
        assert parse_source(minimized).statements == parse_source(source).statements


# ---------------------------------------------------------------------------
# outcome classification
# ---------------------------------------------------------------------------


class TestOutcomeClassification:
    def _run(self, check):
        program = lower_to_program("int v0, v1; v1 = v0 + 1;", name="t")
        return _run_oracle(check, None, program, {})

    def test_agreement(self):
        assert self._run(lambda h, p, e: None) == ("ok", None)

    def test_divergence(self):
        def check(h, p, e):
            return Divergence(oracle="sim", target="demo", detail="v1: (1, 2)")

        kind, payload = self._run(check)
        assert kind == "divergence" and "v1" in payload

    def test_structured_skip(self):
        def check(h, p, e):
            raise OracleSkip("optimized leg: CodeGenerationError: no cover")

        kind, payload = self._run(check)
        assert kind == "skip" and "no cover" in payload

    def test_internal_error_is_a_crash(self):
        def check(h, p, e):
            raise InternalCompilerError.wrap(ValueError("boom"), pass_name="select")

        kind, payload = self._run(check)
        assert kind == "crash" and "boom" in payload

    def test_unstructured_exception_is_a_crash(self):
        def check(h, p, e):
            raise KeyError("missing storage")

        kind, payload = self._run(check)
        assert kind == "crash" and payload.startswith("KeyError")


# ---------------------------------------------------------------------------
# campaigns (end to end, against the shared retarget fixtures)
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_small_campaign_is_clean_on_all_targets(self, fuzz_harnesses):
        report = run_campaign(seed=0, budget=6, harnesses=fuzz_harnesses)
        assert report.ok, [f.to_dict() for f in report.findings]
        assert report.programs == 6
        assert report.checks == 6 * len(DSP_TARGETS) * len(ORACLES)
        assert report.skips < report.checks, "every check skipped"
        # the report is JSON-serializable as produced
        json.dumps(report.to_dict())

    def test_campaign_is_deterministic(self, fuzz_harnesses):
        first = run_campaign(seed=3, budget=3, harnesses=fuzz_harnesses)
        second = run_campaign(seed=3, budget=3, harnesses=fuzz_harnesses)
        assert (first.checks, first.skips) == (second.checks, second.skips)
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]

    def test_unknown_oracle_is_rejected(self, fuzz_harnesses):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_campaign(seed=0, budget=1, oracles=["santa"], harnesses=fuzz_harnesses)

    def test_broken_oracle_yields_minimized_findings(self, fuzz_harnesses, monkeypatch):
        # A check that diverges on every program with at least one
        # statement: the campaign must record findings and shrink each
        # reproducer to (nearly) nothing.
        def always_diverges(harness, program, environment):
            if sum(len(block.statements) for block in program.blocks):
                return Divergence(oracle="sim", target=harness.target, detail="rigged")
            return None

        monkeypatch.setitem(ORACLES, "sim", always_diverges)
        report = run_campaign(
            seed=0,
            budget=2,
            targets=["ref"],
            oracles=["sim"],
            harnesses=fuzz_harnesses,
        )
        assert not report.ok
        assert len(report.findings) == 2
        for finding in report.findings:
            assert finding.kind == "divergence"
            assert finding.detail == "rigged"
            assert finding.minimized
            assert len(finding.minimized) < len(finding.source)
            # minimal: a single statement survives
            program = parse_source(finding.minimized)
            assert len(program.statements) == 1

    def test_max_findings_stops_the_campaign_early(self, fuzz_harnesses, monkeypatch):
        monkeypatch.setitem(
            ORACLES,
            "sim",
            lambda h, p, e: Divergence(oracle="sim", target=h.target, detail="rigged"),
        )
        report = run_campaign(
            seed=0,
            budget=50,
            targets=["ref"],
            oracles=["sim"],
            minimize=False,
            max_findings=3,
            harnesses=fuzz_harnesses,
        )
        assert len(report.findings) == 3
        assert report.programs == 3 < report.budget


# ---------------------------------------------------------------------------
# findings and the corpus store
# ---------------------------------------------------------------------------


class TestCorpusStore:
    def _finding(self):
        return Finding(
            kind="divergence",
            oracle="sim",
            target="ref",
            seed=17,
            index=4,
            source="int v0, v1;\nv1 = (v0) + (1);\n",
            detail="v1: (1, 2)",
            minimized="int v0, v1;\nv1 = (v0) + (1);\n",
        )

    def test_finding_round_trips_through_dict(self):
        finding = self._finding()
        again = Finding.from_dict(finding.to_dict())
        assert again.to_dict() == finding.to_dict()
        assert again.hash == program_hash(finding.source)
        assert again.reproducer == finding.minimized

    def test_save_and_load_corpus(self, tmp_path):
        finding = self._finding()
        path = save_finding(finding, tmp_path)
        assert path.exists()
        # idempotent: same finding, same file
        assert save_finding(finding, tmp_path) == path
        assert len(list(tmp_path.glob("*.json"))) == 1
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].to_dict() == finding.to_dict()

    def test_missing_corpus_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

"""Unit tests for tree-grammar construction and export."""

import pytest

from repro.bdd import BDDManager
from repro.grammar import (
    GrammarConstructionError,
    PatNonterm,
    PatTerm,
    Rule,
    RuleKind,
    TreeGrammar,
    build_tree_grammar,
    grammar_to_bnf,
)
from repro.grammar.grammar import (
    ASSIGN_TERMINAL,
    CONST_TERMINAL,
    START_SYMBOL,
    nonterminal_for,
    storage_of_nonterminal,
)
from repro.hdl import parse_processor
from repro.ise import ConstLeaf, ImmLeaf, OpNode, PortLeaf, RTTemplate, RTTemplateBase, RegLeaf
from repro.netlist import build_netlist
from repro.targets.library import target_hdl_source


@pytest.fixture(scope="module")
def demo_grammar():
    from repro.ise import extract_instruction_set
    from repro.expansion import expand_template_base

    netlist = build_netlist(parse_processor(target_hdl_source("demo")))
    extraction = extract_instruction_set(netlist)
    extended = expand_template_base(extraction.template_base)
    return netlist, extended, build_tree_grammar(netlist, extended)


class TestSymbolNaming:
    def test_nonterminal_roundtrip(self):
        assert nonterminal_for("ACC") == "nt_ACC"
        assert storage_of_nonterminal("nt_ACC") == "ACC"
        assert storage_of_nonterminal("START") == "START"


class TestConstruction:
    def test_terminals_follow_the_paper(self, demo_grammar):
        netlist, base, grammar = demo_grammar
        assert ASSIGN_TERMINAL in grammar.terminals
        assert CONST_TERMINAL in grammar.terminals
        # every sequential component and port appears as a terminal
        for name in ("ACC", "BREG", "DMEM", "PIN", "POUT"):
            assert name in grammar.terminals
        # every hardware operator appears as a terminal
        assert base.operators() <= grammar.terminals

    def test_nonterminals_follow_the_paper(self, demo_grammar):
        _netlist, _base, grammar = demo_grammar
        assert grammar.start == START_SYMBOL
        for name in ("ACC", "BREG", "DMEM", "PIN", "POUT"):
            assert nonterminal_for(name) in grammar.nonterminals
        assert grammar.terminals.isdisjoint(grammar.nonterminals)

    def test_start_rules_cover_all_destinations(self, demo_grammar):
        _netlist, _base, grammar = demo_grammar
        destinations = set()
        for rule in grammar.start_rules():
            assert rule.cost == 0
            root = rule.pattern
            assert isinstance(root, PatTerm) and root.name == ASSIGN_TERMINAL
            destinations.add(root.operands[0].name)
        assert {"ACC", "BREG", "DMEM", "POUT"} <= destinations
        assert "PIN" not in destinations  # input pins cannot be destinations

    def test_rt_rules_have_unit_cost_and_templates(self, demo_grammar):
        _netlist, base, grammar = demo_grammar
        rt_rules = grammar.rt_rules()
        assert len(rt_rules) == len(base)
        assert all(rule.cost == 1 for rule in rt_rules)
        assert all(rule.template is not None for rule in rt_rules)

    def test_stop_rules_have_zero_cost(self, demo_grammar):
        _netlist, _base, grammar = demo_grammar
        stop_rules = grammar.stop_rules()
        assert all(rule.cost == 0 for rule in stop_rules)
        lhs = {rule.lhs for rule in stop_rules}
        assert nonterminal_for("ACC") in lhs
        assert nonterminal_for("DMEM") in lhs

    def test_grammar_is_structurally_valid(self, demo_grammar):
        _netlist, _base, grammar = demo_grammar
        assert grammar.validate() == []

    def test_stats(self, demo_grammar):
        _netlist, base, grammar = demo_grammar
        stats = grammar.stats()
        assert stats["rt_rules"] == len(base)
        assert stats["rules"] == len(grammar.rules)

    def test_rules_by_root_excludes_chain_rules(self, demo_grammar):
        _netlist, _base, grammar = demo_grammar
        by_root = grammar.rules_by_root()
        for label, rules in by_root.items():
            assert all(not rule.is_chain() for rule in rules)
            assert all(rule.pattern.name == label for rule in rules)

    def test_chain_rules_by_source(self, demo_grammar):
        _netlist, _base, grammar = demo_grammar
        chains = grammar.chain_rules_by_source()
        for source, rules in chains.items():
            assert all(rule.pattern.name == source for rule in rules)


class TestPatternLowering:
    def _grammar_for(self, template):
        netlist = build_netlist(parse_processor(target_hdl_source("demo")))
        base = RTTemplateBase(processor="demo")
        base.add(template)
        return build_tree_grammar(netlist, base)

    def test_table2_lowering(self):
        manager = BDDManager()
        pattern = OpNode(
            "add",
            (
                RegLeaf("ACC"),
                OpNode("mul", (PortLeaf("PIN"), ConstLeaf(3))),
            ),
        )
        grammar = self._grammar_for(RTTemplate("ACC", pattern, manager.true))
        rule = grammar.rt_rules()[0]
        assert str(rule.pattern) == "add(nt_ACC, mul(PIN, Const#3))"

    def test_immediate_lowers_to_generic_const(self):
        manager = BDDManager()
        pattern = OpNode("add", (RegLeaf("ACC"), ImmLeaf("IM.word[7:0]", 8)))
        grammar = self._grammar_for(RTTemplate("ACC", pattern, manager.true))
        rule = grammar.rt_rules()[0]
        assert str(rule.pattern) == "add(nt_ACC, Const)"

    def test_unknown_destination_rejected(self):
        manager = BDDManager()
        template = RTTemplate("NOSUCH", RegLeaf("ACC"), manager.true)
        with pytest.raises(GrammarConstructionError):
            self._grammar_for(template)

    def test_unknown_storage_in_pattern_rejected(self):
        manager = BDDManager()
        template = RTTemplate("ACC", RegLeaf("NOSUCH"), manager.true)
        with pytest.raises(GrammarConstructionError):
            self._grammar_for(template)

    def test_unknown_port_in_pattern_rejected(self):
        manager = BDDManager()
        template = RTTemplate("ACC", PortLeaf("NOSUCH"), manager.true)
        with pytest.raises(GrammarConstructionError):
            self._grammar_for(template)


class TestValidation:
    def test_validate_reports_unknown_symbols(self):
        grammar = TreeGrammar(processor="x")
        grammar.nonterminals.add(START_SYMBOL)
        grammar.add_rule("nt_missing", PatNonterm("nt_other"), cost=0, kind=RuleKind.STOP)
        problems = grammar.validate()
        assert any("unknown lhs" in p for p in problems)
        assert any("unknown non-terminal" in p for p in problems)

    def test_validate_reports_missing_start(self):
        grammar = TreeGrammar(processor="x", start="START")
        problems = grammar.validate()
        assert any("start symbol" in p for p in problems)

    def test_validate_reports_unknown_terminal(self):
        grammar = TreeGrammar(processor="x")
        grammar.nonterminals.update({START_SYMBOL, "nt_A"})
        grammar.add_rule("nt_A", PatTerm("mystery"), cost=1, kind=RuleKind.RT)
        problems = grammar.validate()
        assert any("unknown terminal" in p for p in problems)

    def test_rule_str_and_chain_detection(self):
        rule = Rule(0, "nt_A", PatNonterm("nt_B"), 1, RuleKind.RT)
        assert rule.is_chain()
        assert "nt_A" in str(rule)


class TestBnfExport:
    def test_bnf_contains_all_rules(self, demo_grammar):
        _netlist, _base, grammar = demo_grammar
        bnf = grammar_to_bnf(grammar)
        assert "%start START" in bnf
        assert bnf.count("\n") >= len(grammar.rules)
        assert "ASSIGN" in bnf

    def test_bnf_renders_constant_values(self):
        manager = BDDManager()
        netlist = build_netlist(parse_processor(target_hdl_source("demo")))
        base = RTTemplateBase(processor="demo")
        base.add(
            RTTemplate("ACC", OpNode("add", (RegLeaf("ACC"), ConstLeaf(7))), manager.true)
        )
        bnf = grammar_to_bnf(build_tree_grammar(netlist, base))
        assert "Const#7" in bnf

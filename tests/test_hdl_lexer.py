"""Unit tests for the HDL lexer."""

import pytest

from repro.hdl import HdlParseError, TokenKind, tokenize


class TestTokens:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("module ALU kind combinational")
        kinds = [t.kind for t in tokens[:-1]]
        texts = [t.text for t in tokens[:-1]]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.KEYWORD, TokenKind.IDENT]
        assert texts == ["module", "ALU", "kind", "combinational"]

    def test_numbers_decimal_hex_binary(self):
        tokens = tokenize("12 0x1F 0b101")
        values = [int(t.text, 0) for t in tokens[:-1]]
        assert values == [12, 31, 5]

    def test_invalid_number_raises(self):
        with pytest.raises(HdlParseError):
            tokenize("0x")

    def test_operators_longest_match(self):
        tokens = tokenize("a := b << 2 -> c == 1")
        operator_texts = [t.text for t in tokens if t.kind == TokenKind.OPERATOR]
        assert operator_texts == [":=", "<<", "->", "=="]

    def test_punctuation(self):
        tokens = tokenize("y[3:0];")
        punct = [t.text for t in tokens if t.kind == TokenKind.PUNCT]
        assert punct == ["[", ":", "]", ";"]

    def test_comments_are_skipped(self):
        tokens = tokenize("a -- this is a comment\nb")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["a", "b"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(HdlParseError) as excinfo:
            tokenize("a\n$")
        assert "line 2" in str(excinfo.value)

    def test_eof_token_is_appended(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_token_predicates(self):
        tokens = tokenize("module ; :=")
        assert tokens[0].is_keyword("module")
        assert tokens[1].is_punct(";")
        assert tokens[2].is_operator(":=")
        assert not tokens[0].is_keyword("end")

"""Unit tests for the HDL parser."""

import pytest

from repro.hdl import (
    BinaryExpr,
    CaseExpr,
    HdlParseError,
    IdentExpr,
    MemRefExpr,
    ModuleKind,
    NumberExpr,
    PortDirection,
    SliceExpr,
    UnaryExpr,
    parse_processor,
)

_MINIMAL = """
processor tiny;

module IM kind instruction_memory
  out word : 8;
end module;

module R kind register
  in  d : 8;
  in  ld : 1;
  out q : 8;
behavior
  q := d when ld == 1;
end module;

structure
  connect IM.word[3:0] -> R.d;
  connect IM.word[4:4] -> R.ld;
end structure;
"""


class TestTopLevel:
    def test_processor_name(self):
        model = parse_processor(_MINIMAL)
        assert model.name == "tiny"

    def test_modules_parsed(self):
        model = parse_processor(_MINIMAL)
        assert [m.name for m in model.modules] == ["IM", "R"]
        assert model.module("IM").kind == ModuleKind.INSTRUCTION_MEMORY
        assert model.module("R").kind == ModuleKind.REGISTER
        assert model.module("missing") is None

    def test_default_kind_is_combinational(self):
        model = parse_processor(
            "processor p; module IM kind instruction_memory out w : 4; end module;"
            " module BUF in a : 4; out y : 4; behavior y := a; end module;"
        )
        assert model.module("BUF").kind == ModuleKind.COMBINATIONAL

    def test_unknown_kind_rejected(self):
        with pytest.raises(HdlParseError):
            parse_processor("processor p; module X kind bogus out y : 1; end module;")

    def test_missing_processor_keyword_rejected(self):
        with pytest.raises(HdlParseError):
            parse_processor("module X end module;")

    def test_unexpected_top_level_token_rejected(self):
        with pytest.raises(HdlParseError):
            parse_processor("processor p; connect a -> b;")


class TestPortsAndPrimaryPorts:
    def test_port_directions_and_widths(self):
        model = parse_processor(_MINIMAL)
        register = model.module("R")
        assert register.port("d").direction == PortDirection.IN
        assert register.port("q").direction == PortDirection.OUT
        assert register.port("q").width == 8
        assert register.port("nope") is None

    def test_primary_ports(self):
        model = parse_processor(
            "processor p; port PIN : in 16; port POUT : out 8;"
            " module IM kind instruction_memory out w : 4; end module;"
        )
        assert model.primary_port("PIN").direction == PortDirection.IN
        assert model.primary_port("POUT").width == 8
        assert model.primary_port("missing") is None


class TestBehavior:
    def test_conditional_assignment(self):
        model = parse_processor(_MINIMAL)
        assigns = model.module("R").behavior
        assert len(assigns) == 1
        assert assigns[0].target == "q"
        assert isinstance(assigns[0].condition, BinaryExpr)

    def test_case_expression(self):
        model = parse_processor(
            "processor p; module IM kind instruction_memory out w : 4; end module;"
            " module ALU in a : 4; in b : 4; in f : 1; out y : 4;"
            " behavior y := case f when 0 => a + b; when 1 => a - b; else => a; end;"
            " end module;"
        )
        value = model.module("ALU").behavior[0].value
        assert isinstance(value, CaseExpr)
        assert len(value.arms) == 3
        assert value.arms[0].selector == 0
        assert value.arms[2].selector is None

    def test_empty_case_rejected(self):
        with pytest.raises(HdlParseError):
            parse_processor(
                "processor p; module A in s : 1; out y : 1;"
                " behavior y := case s end; end module;"
            )

    def test_memory_behaviour(self):
        model = parse_processor(
            "processor p; module IM kind instruction_memory out w : 4; end module;"
            " module M kind memory in addr : 4; in din : 8; in wr : 1; out dout : 8;"
            " behavior dout := mem[addr]; mem[addr] := din when wr == 1; end module;"
        )
        memory = model.module("M")
        assert isinstance(memory.behavior[0].value, MemRefExpr)
        assert memory.behavior[1].target_memory
        assert isinstance(memory.behavior[1].target_address, IdentExpr)

    def test_operator_precedence(self):
        model = parse_processor(
            "processor p; module A in a : 4; in b : 4; in c : 4; out y : 4;"
            " behavior y := a + b * c; end module;"
        )
        value = model.module("A").behavior[0].value
        assert isinstance(value, BinaryExpr) and value.operator == "+"
        assert isinstance(value.right, BinaryExpr) and value.right.operator == "*"

    def test_parentheses_override_precedence(self):
        model = parse_processor(
            "processor p; module A in a : 4; in b : 4; in c : 4; out y : 4;"
            " behavior y := (a + b) * c; end module;"
        )
        value = model.module("A").behavior[0].value
        assert value.operator == "*"
        assert isinstance(value.left, BinaryExpr) and value.left.operator == "+"

    def test_unary_and_slice(self):
        model = parse_processor(
            "processor p; module A in a : 8; out y : 8;"
            " behavior y := ~a[7:4]; end module;"
        )
        value = model.module("A").behavior[0].value
        assert isinstance(value, UnaryExpr) and value.operator == "~"
        assert isinstance(value.operand, SliceExpr)
        assert value.operand.high == 7 and value.operand.low == 4

    def test_number_literal(self):
        model = parse_processor(
            "processor p; module K kind constant out y : 8; behavior y := 0x2A; end module;"
        )
        value = model.module("K").behavior[0].value
        assert isinstance(value, NumberExpr) and value.value == 42


class TestStructure:
    def test_connections_and_slices(self):
        model = parse_processor(_MINIMAL)
        assert len(model.connections) == 2
        first = model.connections[0]
        assert str(first.source) == "IM.word[3:0]"
        assert str(first.sink) == "R.d"

    def test_bus_declaration(self):
        model = parse_processor(
            "processor p; module IM kind instruction_memory out w : 4; end module;"
            " structure bus DBUS : 16; connect IM.w -> DBUS; end structure;"
        )
        assert model.bus("DBUS").width == 16
        assert model.bus("other") is None

    def test_malformed_structure_rejected(self):
        with pytest.raises(HdlParseError):
            parse_processor("processor p; structure wibble; end structure;")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(HdlParseError):
            parse_processor("processor p")

"""Integration tests across the whole flow.

These tests reproduce, in miniature, the two experiments of the paper:
retargeting every built-in processor (table 3) and comparing code quality
on the TMS320C25 against the conventional baseline and hand-written
reference sizes (figure 2).
"""

import random

import pytest

from repro.baselines import conventional_compiler, hand_reference_size
from repro.dspstone import all_kernel_names, kernel_program
from repro.record.compiler import RecordCompiler
from repro.sim import simulate_statement_code


class TestTable3Shape:
    def test_every_target_retargets_quickly(self, retarget_results):
        for name, result in retarget_results.items():
            assert result.timings.total < 60.0, name

    def test_template_bases_are_nonempty_and_cover_destinations(self, retarget_results):
        for name, result in retarget_results.items():
            assert result.template_count > 0, name
            assert result.template_base.destinations(), name

    def test_generated_selector_exists_for_all_targets(self, retarget_results):
        for name, result in retarget_results.items():
            assert result.matcher_module is not None, name
            assert result.matcher_module.PROCESSOR == name


class TestFigure2Shape:
    @pytest.fixture(scope="class")
    def figure2(self, tms_result, tms_compiler):
        baseline = conventional_compiler(tms_result)
        rows = {}
        for name in all_kernel_names():
            program = kernel_program(name)
            rows[name] = {
                "hand": hand_reference_size(name),
                "record": tms_compiler.compile_program(program).code_size,
                "baseline": baseline.compile_program(program).code_size,
            }
        return rows

    def test_all_kernels_compile_on_both_compilers(self, figure2):
        assert len(figure2) == 10
        assert all(row["record"] > 0 and row["baseline"] > 0 for row in figure2.values())

    def test_record_never_loses_to_the_baseline(self, figure2):
        for name, row in figure2.items():
            assert row["record"] <= row["baseline"], name

    def test_record_is_close_to_hand_written_code(self, figure2):
        """The paper: 'in many cases, Record achieves a low overhead compared
        to hand-written code'."""
        for name, row in figure2.items():
            ratio = row["record"] / row["hand"]
            assert ratio <= 1.5, (name, ratio)

    def test_baseline_overhead_is_largest_on_mac_kernels(self, figure2):
        def overhead(name):
            return figure2[name]["baseline"] / figure2[name]["hand"]

        mac_heavy = min(overhead("fir"), overhead("convolution"))
        simple = overhead("real_update")
        assert mac_heavy >= simple

    def test_relative_code_size_is_within_figure2_range(self, figure2):
        """All bars of figure 2 lie between 100% and 700%."""
        for name, row in figure2.items():
            for compiler in ("record", "baseline"):
                ratio = 100.0 * row[compiler] / row["hand"]
                assert 50.0 <= ratio <= 700.0, (name, compiler, ratio)


class TestCrossTargetCompilation:
    """The same source program must compile and run correctly on several
    different retargeted processors (the point of a retargetable compiler)."""

    SOURCE = "int a, b, c, d; d = c + a * b; c = d - b; b = a & c;"

    @pytest.mark.parametrize("target", ["demo", "ref", "tms320c25"])
    def test_compile_and_simulate(self, retarget_results, target):
        compiler = RecordCompiler(retarget_results[target])
        compiled = compiler.compile_source(self.SOURCE, name="cross")
        assert compiled.code_size > 0
        rng = random.Random(42)
        env = {name: rng.randint(-50, 50) for name in ("a", "b", "c", "d")}
        # Reference-execute the *source* program, not compiled.program:
        # the latter is the optimizer's output, which would make this
        # check blind to optimizer miscompiles.
        from repro.frontend.lowering import lower_to_program

        reference = lower_to_program(self.SOURCE, name="cross").single_block().execute(env)
        simulated = simulate_statement_code(list(compiled.statement_codes), env)
        mask = 0xFFFF
        for key, value in reference.items():
            assert (value & mask) == (simulated.get(key, 0) & mask), (target, key)

    def test_code_size_differs_across_architectures(self, retarget_results):
        sizes = {}
        for target in ("demo", "ref", "tms320c25"):
            compiler = RecordCompiler(retarget_results[target])
            sizes[target] = compiler.compile_source(self.SOURCE, name="cross").code_size
        # the HW/SW trade-off the paper motivates: different architectures
        # need different numbers of instructions for the same program
        assert len(set(sizes.values())) >= 2, sizes

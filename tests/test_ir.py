"""Unit tests for the IR: expressions, programs, binding."""

import pytest

from repro.hdl import parse_processor
from repro.ir import (
    BasicBlock,
    Const,
    Op,
    PortInput,
    Program,
    Statement,
    VarRef,
    bind_program,
    evaluate_expr,
    expr_variables,
)
from repro.ir.binding import BindingError, default_data_memory
from repro.ir.expr import apply_operator, expr_size, wrap_word
from repro.netlist import build_netlist
from repro.targets.library import target_hdl_source


class TestExpressions:
    def test_evaluate_constants_and_vars(self):
        expr = Op("add", (VarRef("a"), Const(5)))
        assert evaluate_expr(expr, {"a": 3}) == 8

    def test_missing_variables_default_to_zero(self):
        assert evaluate_expr(VarRef("nope"), {}) == 0

    def test_port_inputs_read_at_prefixed_names(self):
        expr = Op("add", (PortInput("PIN"), Const(1)))
        assert evaluate_expr(expr, {"@PIN": 41}) == 42

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 7, 9, 16),
            ("sub", 7, 9, wrap_word(-2)),
            ("mul", 300, 300, wrap_word(90000)),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 3, 2, 12),
            ("shr", 12, 2, 3),
            ("eq", 4, 4, 1),
            ("ne", 4, 4, 0),
            ("lt", 3, 4, 1),
            ("div", 9, 2, 4),
            ("mod", 9, 2, 1),
        ],
    )
    def test_binary_operators(self, op, a, b, expected):
        assert apply_operator(op, [a, b]) == expected

    def test_division_by_zero_is_zero(self):
        assert apply_operator("div", [5, 0]) == 0
        assert apply_operator("mod", [5, 0]) == 0

    def test_unary_operators(self):
        assert apply_operator("neg", [1]) == wrap_word(-1)
        assert apply_operator("not", [0]) == wrap_word(~0)
        assert apply_operator("lnot", [0]) == 1
        assert apply_operator("lnot", [7]) == 0

    def test_bit_slice_operator(self):
        assert apply_operator("bits_7_4", [0xAB]) == 0xA

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            apply_operator("bogus", [1, 2])

    def test_expr_variables_and_size(self):
        expr = Op("add", (VarRef("a"), Op("mul", (VarRef("b"), VarRef("a")))))
        assert expr_variables(expr) == {"a", "b"}
        assert expr_size(expr) == 5

    def test_wrapping_semantics(self):
        assert wrap_word(0x1_0005) == 5
        assert evaluate_expr(Const(-1), {}) == 0xFFFF


class TestProgramsAndBlocks:
    def _block(self):
        return BasicBlock(
            name="entry",
            statements=[
                Statement("t", Op("mul", (VarRef("a"), VarRef("b")))),
                Statement("d", Op("add", (VarRef("t"), VarRef("c")))),
            ],
        )

    def test_statement_variables(self):
        statement = Statement("d", Op("add", (VarRef("a"), Const(1))))
        assert statement.variables() == {"a", "d"}
        port_statement = Statement("@POUT", VarRef("a"))
        assert port_statement.variables() == {"a"}

    def test_block_execution_updates_environment(self):
        block = self._block()
        env = block.execute({"a": 3, "b": 4, "c": 5})
        assert env["t"] == 12
        assert env["d"] == 17

    def test_block_execution_does_not_mutate_input(self):
        block = self._block()
        original = {"a": 1, "b": 1, "c": 1}
        block.execute(original)
        assert "d" not in original

    def test_program_views(self):
        program = Program(name="p", blocks=[self._block()], scalars=["a", "b", "c", "d", "t"])
        assert program.statement_count() == 2
        assert program.single_block() is program.blocks[0]
        assert {"a", "b", "c", "d", "t"} == program.all_variables()

    def test_single_block_rejects_multiple_blocks(self):
        program = Program(name="p", blocks=[self._block(), self._block()])
        with pytest.raises(ValueError):
            program.single_block()


class TestBinding:
    def _netlist(self, name="tms320c25"):
        return build_netlist(parse_processor(target_hdl_source(name)))

    def _program(self):
        return Program(
            name="p",
            blocks=[BasicBlock(name="entry", statements=[Statement("d", VarRef("a"))])],
            scalars=["a", "d"],
        )

    def test_default_binding_uses_main_memory(self):
        netlist = self._netlist()
        assert default_data_memory(netlist) == "DMEM"
        binding = bind_program(self._program(), netlist)
        assert binding.storage_of("a") == "DMEM"
        assert binding.storage_of("anything_else") == "DMEM"

    def test_overrides(self):
        netlist = self._netlist()
        binding = bind_program(self._program(), netlist, overrides={"a": "ACC"})
        assert binding.storage_of("a") == "ACC"
        assert binding.storage_of("d") == "DMEM"
        assert list(binding.bound_variables()) == ["a"]

    def test_override_to_unknown_storage_rejected(self):
        netlist = self._netlist()
        with pytest.raises(BindingError):
            bind_program(self._program(), netlist, overrides={"a": "NOWHERE"})

    def test_memoryless_processor_falls_back_to_register(self):
        source = """
        processor tiny;
        module IM kind instruction_memory
          out word : 4;
        end module;
        module R kind register
          in d : 4;
          in ld : 1;
          out q : 4;
        behavior
          q := d when ld == 1;
        end module;
        """
        netlist = build_netlist(parse_processor(source))
        assert default_data_memory(netlist) is None
        binding = bind_program(self._program(), netlist)
        assert binding.storage_of("a") == "R"

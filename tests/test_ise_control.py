"""Unit tests for control-signal analysis."""

import pytest

from repro.hdl import parse_processor
from repro.hdl.ast import BinaryExpr, IdentExpr, NumberExpr
from repro.ise import ControlAnalyzer
from repro.netlist import build_netlist

# A small processor with an instruction decoder, a mode register and a
# hardwired constant, exercising every control-propagation path.
_SOURCE = """
processor ctl;

module IM kind instruction_memory
  out word : 8;
end module;

module MODE kind mode_register
  out m : 1;
end module;

module ONE kind constant
  out k : 4;
behavior
  k := 5;
end module;

module R kind register
  in  d : 8;
  in  ld : 1;
  out q : 8;
behavior
  q := d when ld == 1;
end module;

module DEC kind decoder
  in  opc : 2;
  out f : 2;
  out ld : 1;
behavior
  f := case opc
         when 0 => 0;
         when 1 => 1;
         when 2 => 3;
         else => 2;
       end;
  ld := case opc
          when 3 => 0;
          else => 1;
        end;
end module;

module GLUE kind combinational
  in  a : 1;
  in  b : 1;
  out y : 1;
behavior
  y := a & b;
end module;

module ALU kind combinational
  in  a : 8;
  in  b : 8;
  in  f : 2;
  out y : 8;
behavior
  y := case f
         when 0 => a + b;
         when 1 => a - b;
         else => a;
       end;
end module;

structure
  connect IM.word[7:6] -> DEC.opc;
  connect DEC.f -> ALU.f;
  connect DEC.ld -> GLUE.a;
  connect MODE.m -> GLUE.b;
  connect GLUE.y -> R.ld;
  connect R.q -> ALU.a;
  connect IM.word[5:0] -> ALU.b;
  connect ALU.y -> R.d;
end structure;
"""


@pytest.fixture()
def analyzer():
    netlist = build_netlist(parse_processor(_SOURCE))
    return ControlAnalyzer(netlist), netlist


class TestControlVariables:
    def test_instruction_and_mode_bits_declared(self, analyzer):
        control, _ = analyzer
        names = control.instruction_bit_names()
        assert "IM.word[0]" in names and "IM.word[7]" in names
        assert "MODE.m[0]" in names
        # Instruction bits are declared before mode bits.
        assert names.index("IM.word[0]") < names.index("MODE.m[0]")

    def test_instruction_memory_vector_is_symbolic(self, analyzer):
        control, _ = analyzer
        vector = control.output_vector("IM", "word")
        assert vector is not None and vector.width == 8
        assert not vector.is_constant()

    def test_constant_module_vector(self, analyzer):
        control, _ = analyzer
        vector = control.output_vector("ONE", "k")
        assert vector.constant_value() == 5

    def test_register_output_is_not_control(self, analyzer):
        control, _ = analyzer
        assert control.output_vector("R", "q") is None


class TestDecoderPropagation:
    def test_decoder_output_depends_on_opcode(self, analyzer):
        control, _ = analyzer
        vector = control.output_vector("DEC", "f")
        assert vector is not None
        # opc = 2 (word[7:6] = 10) selects arm "when 2 => 3".
        condition = vector.equals_constant(3)
        assert condition.evaluate({"IM.word[7]": True, "IM.word[6]": False})
        assert not condition.evaluate({"IM.word[7]": False, "IM.word[6]": False})

    def test_else_arm_of_decoder(self, analyzer):
        control, _ = analyzer
        vector = control.output_vector("DEC", "f")
        condition = vector.equals_constant(2)
        assert condition.evaluate({"IM.word[7]": True, "IM.word[6]": True})

    def test_random_logic_between_decoder_and_register(self, analyzer):
        control, netlist = analyzer
        register = netlist.module("R")
        condition = control.condition_true(register, register.behavior[0].condition)
        assert condition is not None
        # ld requires opc != 3 AND the mode bit set.
        assert condition.evaluate(
            {"IM.word[7]": False, "IM.word[6]": False, "MODE.m[0]": True}
        )
        assert not condition.evaluate(
            {"IM.word[7]": True, "IM.word[6]": True, "MODE.m[0]": True}
        )
        assert not condition.evaluate(
            {"IM.word[7]": False, "IM.word[6]": False, "MODE.m[0]": False}
        )

    def test_condition_equals_on_alu_function(self, analyzer):
        control, netlist = analyzer
        alu = netlist.module("ALU")
        condition = control.condition_equals(alu, IdentExpr("f"), 1)
        assert condition is not None
        assert condition.evaluate({"IM.word[7]": False, "IM.word[6]": True})
        assert not condition.evaluate({"IM.word[7]": True, "IM.word[6]": True})


class TestConditionHelpers:
    def test_missing_condition_is_true(self, analyzer):
        control, netlist = analyzer
        register = netlist.module("R")
        assert control.condition_true(register, None).is_true()

    def test_data_dependent_expression_is_none(self, analyzer):
        control, netlist = analyzer
        alu = netlist.module("ALU")
        assert control.evaluate_expression(alu, IdentExpr("a")) is None
        assert control.condition_true(alu, IdentExpr("a")) is None

    def test_literal_condition(self, analyzer):
        control, netlist = analyzer
        alu = netlist.module("ALU")
        assert control.condition_true(alu, NumberExpr(1)).is_true()
        assert control.condition_true(alu, NumberExpr(0)).is_false()

    def test_comparison_expression(self, analyzer):
        control, netlist = analyzer
        alu = netlist.module("ALU")
        expr = BinaryExpr("==", IdentExpr("f"), NumberExpr(0))
        condition = control.condition_true(alu, expr)
        assert condition.evaluate({"IM.word[7]": False, "IM.word[6]": False})
        assert not condition.evaluate({"IM.word[7]": False, "IM.word[6]": True})

    def test_output_enable_condition(self, analyzer):
        control, _ = analyzer
        # Unconditional combinational output: always enabled.
        assert control.output_enable_condition("GLUE", "y").is_true()
        # Nonexistent assignments: never enabled.
        assert control.output_enable_condition("R", "d") is not None

    def test_evaluate_literal_width(self, analyzer):
        control, netlist = analyzer
        alu = netlist.module("ALU")
        vector = control.evaluate_expression(alu, NumberExpr(7))
        assert vector.constant_value() == 7

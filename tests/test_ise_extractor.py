"""Unit tests for the instruction-set extraction driver."""

from repro.hdl import parse_processor
from repro.ise import InstructionSetExtractor, extract_instruction_set
from repro.netlist import build_netlist
from repro.targets.library import target_hdl_source


def _netlist(name):
    return build_netlist(parse_processor(target_hdl_source(name)))


class TestExtraction:
    def test_demo_extraction_produces_templates(self):
        result = extract_instruction_set(_netlist("demo"))
        assert len(result.template_base) > 5
        rendered = {t.render() for t in result.template_base}
        assert "ACC := add(ACC, DMEM)" in rendered
        assert "POUT := ACC" in rendered

    def test_every_template_condition_is_satisfiable(self):
        result = extract_instruction_set(_netlist("demo"))
        assert all(t.condition.satisfiable() for t in result.template_base)

    def test_duplicates_are_merged(self):
        result = extract_instruction_set(_netlist("demo"))
        keys = {
            (t.destination, str(t.pattern), t.condition.node)
            for t in result.template_base
        }
        assert len(keys) == len(result.template_base)

    def test_per_destination_counts_sum_to_total(self):
        result = extract_instruction_set(_netlist("tms320c25"))
        assert sum(result.per_destination.values()) == len(result.template_base)

    def test_stats_contains_template_count(self):
        result = extract_instruction_set(_netlist("bass_boost"))
        stats = result.stats()
        assert stats["templates"] == len(result.template_base)
        assert "chained" in stats

    def test_extractor_class_equivalent_to_helper(self):
        netlist = _netlist("manocpu")
        via_class = InstructionSetExtractor(netlist).extract()
        via_helper = extract_instruction_set(_netlist("manocpu"))
        assert len(via_class.template_base) == len(via_helper.template_base)

    def test_chained_templates_found_on_mac_machines(self):
        result = extract_instruction_set(_netlist("tms320c25"))
        chained = {t.render() for t in result.template_base.chained_templates()}
        assert "ACC := add(ACC, mul(TREG, DMEM))" in chained
        assert "ACC := sub(ACC, mul(TREG, DMEM))" in chained

    def test_mode_register_free_machines_have_no_mode_bits(self):
        result = extract_instruction_set(_netlist("demo"))
        names = result.control.instruction_bit_names()
        assert all(name.startswith("IM.") for name in names)

    def test_truncation_flag_not_set_for_builtin_targets(self):
        for name in ("demo", "manocpu", "tanenbaum", "bass_boost", "tms320c25"):
            result = extract_instruction_set(_netlist(name))
            assert not result.truncated, name

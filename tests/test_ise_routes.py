"""Unit tests for data-transfer route enumeration."""

import pytest

from repro.hdl import parse_processor
from repro.ise import ControlAnalyzer, RouteEnumerator
from repro.ise.routes import BINARY_OPERATOR_NAMES, COMMUTATIVE_OPERATORS, UNARY_OPERATOR_NAMES
from repro.netlist import build_netlist


def _enumerate(source, **kwargs):
    netlist = build_netlist(parse_processor(source))
    control = ControlAnalyzer(netlist)
    enumerator = RouteEnumerator(netlist, control, **kwargs)
    return netlist, enumerator


_ACCU_MACHINE = """
processor accu;

port PIN : in 8;
port POUT : out 8;

module IM kind instruction_memory
  out word : 8;
end module;

module DMEM kind memory
  in  addr : 4;
  in  din  : 8;
  in  wr   : 1;
  out dout : 8;
behavior
  dout := mem[addr];
  mem[addr] := din when wr == 1;
end module;

module ACC kind register
  in  d : 8;
  in  ld : 1;
  out q : 8;
behavior
  q := d when ld == 1;
end module;

module ALU kind combinational
  in  a : 8;
  in  b : 8;
  in  f : 2;
  out y : 8;
behavior
  y := case f
         when 0 => a + b;
         when 1 => a - b;
         when 2 => b;
       end;
end module;

module MUXB kind combinational
  in  a : 8;
  in  b : 8;
  in  s : 1;
  out y : 8;
behavior
  y := case s
         when 0 => a;
         when 1 => b;
       end;
end module;

module DEC kind decoder
  in  opc : 2;
  out f : 2;
  out acc_ld : 1;
  out wr : 1;
  out sb : 1;
behavior
  f := case opc when 0 => 0; when 1 => 1; when 2 => 2; else => 2; end;
  acc_ld := case opc when 3 => 0; else => 1; end;
  wr := case opc when 3 => 1; else => 0; end;
  sb := case opc when 1 => 1; else => 0; end;
end module;

structure
  connect IM.word[7:6] -> DEC.opc;
  connect IM.word[3:0] -> DMEM.addr;
  connect DEC.f -> ALU.f;
  connect DEC.acc_ld -> ACC.ld;
  connect DEC.wr -> DMEM.wr;
  connect DEC.sb -> MUXB.s;
  connect ACC.q -> ALU.a;
  connect DMEM.dout -> MUXB.a;
  connect PIN -> MUXB.b;
  connect MUXB.y -> ALU.b;
  connect ALU.y -> ACC.d;
  connect ACC.q -> DMEM.din;
  connect ACC.q -> POUT;
end structure;
"""


class TestOperatorTables:
    def test_binary_names_cover_arithmetic_and_logic(self):
        for operator in ["+", "-", "*", "&", "|", "^", "<<", ">>"]:
            assert operator in BINARY_OPERATOR_NAMES

    def test_unary_names(self):
        assert UNARY_OPERATOR_NAMES["-"] == "neg"
        assert UNARY_OPERATOR_NAMES["~"] == "not"

    def test_commutative_set(self):
        assert "add" in COMMUTATIVE_OPERATORS
        assert "sub" not in COMMUTATIVE_OPERATORS


class TestAccumulatorMachine:
    def test_register_destination_routes(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE)
        templates = enumerator.enumerate_storage_destination(netlist.module("ACC"))
        rendered = {t.render() for t in templates}
        assert "ACC := add(ACC, DMEM)" in rendered
        assert "ACC := sub(ACC, PIN)" in rendered
        assert "ACC := DMEM" in rendered

    def test_encoding_conflicts_are_discarded(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE)
        templates = enumerator.enumerate_storage_destination(netlist.module("ACC"))
        rendered = {t.render() for t in templates}
        # add with the PIN operand requires f=0 (opc 0) and sb=1 (opc 1):
        # contradictory, so the route must have been discarded.
        assert "ACC := add(ACC, PIN)" not in rendered
        # sub with the memory operand requires f=1 (opc 1) and sb=0 (not 1):
        # also contradictory.
        assert "ACC := sub(ACC, DMEM)" not in rendered

    def test_conditions_identify_partial_instructions(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE)
        templates = enumerator.enumerate_storage_destination(netlist.module("ACC"))
        by_render = {t.render(): t for t in templates}
        add_template = by_render["ACC := add(ACC, DMEM)"]
        bits = add_template.partial_instruction()
        assert bits.get("IM.word[7]", False) is False
        assert bits.get("IM.word[6]", False) is False

    def test_memory_destination(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE)
        templates = enumerator.enumerate_storage_destination(netlist.module("DMEM"))
        assert [t.render() for t in templates] == ["DMEM := ACC [direct]"]
        assert templates[0].addressing == "direct"

    def test_primary_output_destination(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE)
        templates = enumerator.enumerate_port_destination("POUT")
        assert [t.render() for t in templates] == ["POUT := ACC"]

    def test_enumerate_all_covers_every_destination(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE)
        templates = enumerator.enumerate_all()
        destinations = {t.destination for t in templates}
        assert destinations == {"ACC", "DMEM", "POUT"}

    def test_unconnected_output_port_has_no_routes(self):
        source = _ACCU_MACHINE.replace("connect ACC.q -> POUT;", "")
        netlist, enumerator = _enumerate(source)
        assert enumerator.enumerate_port_destination("POUT") == []

    def test_depth_limit_stops_traversal(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE, max_depth=0)
        templates = enumerator.enumerate_storage_destination(netlist.module("ACC"))
        assert templates == []

    def test_alternative_cap_marks_truncation(self):
        netlist, enumerator = _enumerate(_ACCU_MACHINE, max_alternatives=1)
        enumerator.enumerate_storage_destination(netlist.module("ACC"))
        assert enumerator.truncated


_BUS_MACHINE = """
processor busses;

module IM kind instruction_memory
  out word : 4;
end module;

module A kind register
  in  d : 8;
  in  ld : 1;
  out q : 8;
behavior
  q := d when ld == 1;
end module;

module B kind register
  in  d : 8;
  in  ld : 1;
  out q : 8;
behavior
  q := d when ld == 1;
end module;

module DRVA kind combinational
  in  a : 8;
  in  en : 1;
  out y : 8;
behavior
  y := a when en == 1;
end module;

module DRVB kind combinational
  in  a : 8;
  in  en : 1;
  out y : 8;
behavior
  y := a when en == 1;
end module;

module C kind register
  in  d : 8;
  in  ld : 1;
  out q : 8;
behavior
  q := d when ld == 1;
end module;

structure
  bus DBUS : 8;
  connect A.q -> DRVA.a;
  connect B.q -> DRVB.a;
  connect IM.word[0:0] -> DRVA.en;
  connect IM.word[1:1] -> DRVB.en;
  connect IM.word[2:2] -> C.ld;
  connect DRVA.y -> DBUS;
  connect DRVB.y -> DBUS;
  connect DBUS -> C.d;
end structure;
"""


class TestTristateBus:
    def test_each_driver_yields_a_route(self):
        netlist, enumerator = _enumerate(_BUS_MACHINE)
        templates = enumerator.enumerate_storage_destination(netlist.module("C"))
        rendered = {t.render() for t in templates}
        assert rendered == {"C := A", "C := B"}

    def test_bus_contention_is_excluded_from_conditions(self):
        netlist, enumerator = _enumerate(_BUS_MACHINE)
        templates = enumerator.enumerate_storage_destination(netlist.module("C"))
        by_render = {t.render(): t for t in templates}
        route_a = by_render["C := A"].condition
        # The condition must forbid the other driver being enabled.
        assert not route_a.evaluate(
            {"IM.word[0]": True, "IM.word[1]": True, "IM.word[2]": True}
        )
        assert route_a.evaluate(
            {"IM.word[0]": True, "IM.word[1]": False, "IM.word[2]": True}
        )

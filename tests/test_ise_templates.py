"""Unit tests for RT template and pattern helpers."""

from repro.bdd import BDDManager
from repro.ise import (
    ConstLeaf,
    ImmLeaf,
    OpNode,
    PortLeaf,
    RTTemplate,
    RTTemplateBase,
    RegLeaf,
    pattern_operators,
    pattern_size,
)
from repro.ise.templates import (
    chained_operation_count,
    pattern_constants,
    pattern_depth,
    pattern_leaves,
    pattern_storages,
)


def _mac_pattern():
    return OpNode("add", (RegLeaf("ACC"), OpNode("mul", (RegLeaf("T"), RegLeaf("MEM")))))


class TestPatternHelpers:
    def test_pattern_size(self):
        assert pattern_size(RegLeaf("ACC")) == 1
        assert pattern_size(_mac_pattern()) == 5

    def test_pattern_depth(self):
        assert pattern_depth(ConstLeaf(3)) == 1
        assert pattern_depth(_mac_pattern()) == 3

    def test_pattern_operators(self):
        assert pattern_operators(_mac_pattern()) == {"add", "mul"}
        assert pattern_operators(PortLeaf("PIN")) == set()

    def test_pattern_leaves_in_order(self):
        leaves = pattern_leaves(_mac_pattern())
        assert [str(leaf) for leaf in leaves] == ["ACC", "T", "MEM"]

    def test_pattern_storages_and_constants(self):
        pattern = OpNode("add", (RegLeaf("ACC"), ConstLeaf(1)))
        assert pattern_storages(pattern) == {"ACC"}
        assert pattern_constants(pattern) == {1}

    def test_chained_operation_count(self):
        assert chained_operation_count(RegLeaf("ACC")) == 0
        assert chained_operation_count(OpNode("add", (RegLeaf("A"), RegLeaf("B")))) == 1
        assert chained_operation_count(_mac_pattern()) == 2

    def test_string_rendering(self):
        assert str(_mac_pattern()) == "add(ACC, mul(T, MEM))"
        assert str(ConstLeaf(5)) == "#5"
        assert str(ImmLeaf("IM.word[7:0]", 8)) == "imm<IM.word[7:0]:8>"


class TestRTTemplate:
    def test_render_and_flags(self):
        manager = BDDManager()
        template = RTTemplate("ACC", _mac_pattern(), manager.true)
        assert template.render() == "ACC := add(ACC, mul(T, MEM))"
        assert template.is_chained()
        assert not template.is_data_move()

    def test_data_move_flag(self):
        manager = BDDManager()
        move = RTTemplate("ACC", RegLeaf("MEM"), manager.true)
        assert move.is_data_move()
        assert not move.is_chained()

    def test_partial_instruction_from_condition(self):
        manager = BDDManager()
        bit = manager.variable("IM.word[0]")
        template = RTTemplate("ACC", RegLeaf("MEM"), bit)
        assert template.partial_instruction() == {"IM.word[0]": True}

    def test_partial_instruction_of_unsatisfiable_condition(self):
        manager = BDDManager()
        template = RTTemplate("ACC", RegLeaf("MEM"), manager.false)
        assert template.partial_instruction() == {}

    def test_addressing_in_render(self):
        manager = BDDManager()
        template = RTTemplate("MEM", RegLeaf("ACC"), manager.true, addressing="direct")
        assert "[direct]" in template.render()


class TestTemplateBase:
    def _base(self):
        manager = BDDManager()
        base = RTTemplateBase(processor="p")
        base.add(RTTemplate("ACC", _mac_pattern(), manager.true))
        base.add(RTTemplate("ACC", RegLeaf("MEM"), manager.true))
        base.add(RTTemplate("MEM", RegLeaf("ACC"), manager.true))
        base.add(RTTemplate("ACC", OpNode("add", (RegLeaf("ACC"), ConstLeaf(1))), manager.true))
        return base

    def test_len_and_iter(self):
        base = self._base()
        assert len(base) == 4
        assert len(list(base)) == 4

    def test_destinations_and_operators(self):
        base = self._base()
        assert base.destinations() == {"ACC", "MEM"}
        assert base.operators() == {"add", "mul"}
        assert base.constants() == {1}

    def test_chained_and_grouping(self):
        base = self._base()
        assert len(base.chained_templates()) == 1
        grouped = base.by_destination()
        assert len(grouped["ACC"]) == 3
        assert len(grouped["MEM"]) == 1

    def test_stats(self):
        stats = self._base().stats()
        assert stats["templates"] == 4
        assert stats["chained"] == 1
        assert stats["data_moves"] == 2
        assert stats["destinations"] == 2

"""Unit tests for netlist construction and semantic checks."""

import pytest

from repro.hdl import HdlSemanticError, ModuleKind, parse_processor
from repro.netlist import (
    BusEndpoint,
    PortEndpoint,
    PrimaryEndpoint,
    build_netlist,
)

_GOOD = """
processor good;

port PIN : in 8;
port POUT : out 8;

module IM kind instruction_memory
  out word : 8;
end module;

module R kind register
  in  d : 8;
  in  ld : 1;
  out q : 8;
behavior
  q := d when ld == 1;
end module;

module ADDER kind combinational
  in a : 8;
  in b : 8;
  out y : 8;
behavior
  y := a + b;
end module;

structure
  bus DBUS : 8;
  connect IM.word[3:0] -> ADDER.a;
  connect R.q -> ADDER.b;
  connect ADDER.y -> DBUS;
  connect DBUS -> R.d;
  connect IM.word[4:4] -> R.ld;
  connect PIN -> POUT;
end structure;
"""


def _build(source):
    return build_netlist(parse_processor(source))


class TestConstruction:
    def test_modules_and_ports(self):
        netlist = _build(_GOOD)
        assert set(netlist.modules) == {"IM", "R", "ADDER"}
        assert netlist.port("R", "q").width == 8
        assert netlist.module("R").kind == ModuleKind.REGISTER

    def test_input_drivers(self):
        netlist = _build(_GOOD)
        driver = netlist.driver_of_input("ADDER", "a")
        assert isinstance(driver, PortEndpoint)
        assert driver.module == "IM" and driver.high == 3

    def test_bus_drivers_and_sinks(self):
        netlist = _build(_GOOD)
        drivers = netlist.drivers_of_bus("DBUS")
        assert len(drivers) == 1 and drivers[0].module == "ADDER"
        sink_driver = netlist.driver_of_input("R", "d")
        assert isinstance(sink_driver, BusEndpoint) and sink_driver.bus == "DBUS"

    def test_primary_output_driver(self):
        netlist = _build(_GOOD)
        driver = netlist.driver_of_primary_output("POUT")
        assert isinstance(driver, PrimaryEndpoint) and driver.port == "PIN"

    def test_unconnected_input_has_no_driver(self):
        source = _GOOD.replace("connect IM.word[4:4] -> R.ld;", "")
        netlist = _build(source)
        assert netlist.driver_of_input("R", "ld") is None

    def test_stats_and_views(self):
        netlist = _build(_GOOD)
        stats = netlist.stats()
        assert stats["modules"] == 3
        assert stats["sequential"] == 1
        assert stats["buses"] == 1
        assert [m.name for m in netlist.sequential_modules()] == ["R"]
        assert [m.name for m in netlist.control_source_modules()] == ["IM"]
        assert [m.name for m in netlist.combinational_modules()] == ["ADDER"]
        assert netlist.rt_destinations() == ["R", "POUT"]


class TestSemanticErrors:
    def test_missing_instruction_memory(self):
        with pytest.raises(HdlSemanticError):
            _build("processor p; module R kind register in d : 4; out q : 4; end module;")

    def test_duplicate_module_name(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module IM kind register in d : 4; out q : 4; end module;"
            )

    def test_duplicate_port_name(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; in x : 4; out y : 4; end module;"
            )

    def test_unknown_connection_module(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " structure connect NOPE.y -> IM.w; end structure;"
            )

    def test_source_must_be_output(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior y := x; end module;"
                " structure connect A.x -> A.x; end structure;"
            )

    def test_sink_must_be_input(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior y := x; end module;"
                " structure connect IM.w -> A.y; end structure;"
            )

    def test_multiple_drivers_rejected_without_bus(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior y := x; end module;"
                " structure connect IM.w -> A.x; connect IM.w -> A.x; end structure;"
            )

    def test_assignment_to_unknown_port(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior z := x; end module;"
            )

    def test_assignment_to_input_port(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior x := y; end module;"
            )

    def test_reference_to_unknown_port(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior y := nothere; end module;"
            )

    def test_mem_write_outside_memory_module(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior mem[x] := x; end module;"
            )

    def test_mem_read_outside_memory_module(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior y := mem[x]; end module;"
            )

    def test_constant_module_must_assign_literals(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module K kind constant in x : 4; out y : 4; behavior y := x; end module;"
            )

    def test_register_needs_output_port(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module R kind register in d : 4; end module;"
            )

    def test_duplicate_primary_port(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; port X : in 4; port X : out 4;"
                " module IM kind instruction_memory out w : 4; end module;"
            )

    def test_bus_slice_rejected(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " module A in x : 4; out y : 4; behavior y := x; end module;"
                " structure bus B : 4; connect IM.w -> B;"
                " connect B[3:0] -> A.x; end structure;"
            )

    def test_unknown_endpoint_name(self):
        with pytest.raises(HdlSemanticError):
            _build(
                "processor p; module IM kind instruction_memory out w : 4; end module;"
                " structure connect IM.w -> NOWHERE; end structure;"
            )


class TestQueryErrors:
    def test_unknown_module_lookup(self):
        netlist = _build(_GOOD)
        with pytest.raises(HdlSemanticError):
            netlist.module("missing")

    def test_unknown_port_lookup(self):
        netlist = _build(_GOOD)
        with pytest.raises(HdlSemanticError):
            netlist.port("R", "missing")

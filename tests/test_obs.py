"""Unit tests for the observability toolkit (repro.obs).

Covers the tracer/span core (nesting, attributes, Chrome trace export,
the disabled null tracer), request-ID context propagation, structured
logging (formats, destinations, ambient request IDs) and the shared
metrics registry primitives.
"""

import io
import json
import threading

import pytest

from repro.obs import log
from repro.obs.context import (
    current_request_id,
    new_request_id,
    set_request_id,
    use_request_id,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    format_labels,
    format_value,
)
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    current_tracer,
    flame_summary,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _reset_log_config(monkeypatch):
    """Every test starts from the unconfigured, env-free logging state."""
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.delenv("REPRO_LOG_FILE", raising=False)
    log.reset()
    yield
    log.reset()


# ---------------------------------------------------------------------------
# tracing core
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_record_parent_links(self):
        tracer = Tracer(name="t")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_s is not None
        assert outer.duration_s >= inner.duration_s

    def test_span_attributes_via_kwargs_and_set(self):
        tracer = Tracer(name="t")
        with tracer.span("work", phase="select") as span:
            span.set(nodes=42, rate=0.5)
        assert span.attributes == {"phase": "select", "nodes": 42, "rate": 0.5}

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer(name="t")
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_instants_are_recorded(self):
        tracer = Tracer(name="t")
        tracer.instant("cache:hit", key="abc")
        trace = tracer.to_chrome_trace()
        instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "cache:hit"
        assert instants[0]["args"]["key"] == "abc"

    def test_chrome_trace_shape(self):
        tracer = Tracer(name="t", request_id="rid-1")
        with tracer.span("compile", target="demo"):
            with tracer.span("pass:select"):
                pass
        trace = tracer.to_chrome_trace(process_name="unit test")
        events = trace["traceEvents"]
        # JSON-serializable end to end
        json.dumps(trace)
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["request_id"] == "rid-1"
        meta = [e for e in events if e.get("ph") == "M"]
        assert meta and meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "unit test"
        complete = [e for e in events if e.get("ph") == "X"]
        assert {e["name"] for e in complete} == {"compile", "pass:select"}
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["args"]["request_id"] == "rid-1"
        by_name = {e["name"]: e for e in complete}
        assert (
            by_name["pass:select"]["args"]["parent_id"]
            == by_name["compile"]["args"]["span_id"]
        )

    def test_spans_survive_exceptions(self):
        tracer = Tracer(name="t")
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        spans = tracer.spans()
        assert [s.name for s in spans] == ["doomed"]
        assert spans[0].duration_s is not None

    def test_threads_get_independent_stacks(self):
        tracer = Tracer(name="t")
        done = threading.Event()

        def worker():
            with tracer.span("thread-span"):
                pass
            done.set()

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {s.name: s for s in tracer.spans()}
        # the thread's span must NOT be parented under the main thread's
        assert by_name["thread-span"].parent_id is None
        assert by_name["thread-span"].thread_id != by_name["main-span"].thread_id


class TestNullTracer:
    def test_ambient_default_is_disabled(self):
        tracer = current_tracer()
        assert tracer is NULL_TRACER
        assert not tracer.enabled

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x", a=1) as span:
            span.set(b=2)
        NULL_TRACER.instant("y")
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.to_chrome_trace() == {"traceEvents": []}

    def test_use_tracer_restores_previous(self):
        tracer = Tracer(name="t")
        assert current_tracer() is NULL_TRACER
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER


class TestFlameSummary:
    def test_children_render_under_their_parent(self):
        tracer = Tracer(name="t")
        with tracer.span("compile"):
            with tracer.span("pass:select"):
                with tracer.span("select:block"):
                    pass
            with tracer.span("pass:opt"):
                pass
        text = flame_summary(tracer.to_chrome_trace())
        lines = text.splitlines()
        assert "span" in lines[0] and "count" in lines[0]
        names = [line.split()[0] for line in lines[1:]]
        assert names[0] == "compile"
        # select:block appears directly after pass:select, indented deeper
        select_at = names.index("pass:select")
        assert names[select_at + 1] == "select:block"
        select_line = lines[1 + select_at]
        block_line = lines[1 + select_at + 1]
        indent = lambda s: len(s) - len(s.lstrip())  # noqa: E731
        assert indent(block_line) > indent(select_line) > indent(lines[1])

    def test_empty_trace_renders_a_placeholder(self):
        text = flame_summary({"traceEvents": []})
        assert "empty trace" in text


# ---------------------------------------------------------------------------
# request-ID context
# ---------------------------------------------------------------------------


class TestRequestIdContext:
    def test_new_request_ids_are_unique_hex(self):
        a, b = new_request_id(), new_request_id()
        assert a != b
        int(a, 16)  # valid hex
        assert len(a) == 32

    def test_use_request_id_scopes_the_ambient_value(self):
        assert current_request_id() is None
        with use_request_id("outer"):
            assert current_request_id() == "outer"
            with use_request_id("inner"):
                assert current_request_id() == "inner"
            assert current_request_id() == "outer"
        assert current_request_id() is None

    def test_use_request_id_none_clears_inside_block(self):
        with use_request_id("outer"):
            with use_request_id(None):
                assert current_request_id() is None
            assert current_request_id() == "outer"

    def test_set_request_id_is_unscoped(self):
        token_value = set_request_id("pinned")
        assert token_value is not None
        assert current_request_id() == "pinned"
        set_request_id(None)
        assert current_request_id() is None


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_off_by_default(self):
        stream = io.StringIO()
        log.configure(stream=stream)  # destination only; format stays off
        assert not log.enabled()
        log.info("nothing")
        assert stream.getvalue() == ""

    def test_json_records_are_one_line_each(self):
        stream = io.StringIO()
        log.configure(format="json", stream=stream)
        log.info("compile", target="demo", duration_s=0.25)
        log.warning("compile_failed", target="ref")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "compile"
        assert first["level"] == "info"
        assert first["target"] == "demo"
        assert first["duration_s"] == 0.25
        assert isinstance(first["ts"], float)
        assert json.loads(lines[1])["level"] == "warning"

    def test_text_format_renders_key_values(self):
        stream = io.StringIO()
        log.configure(format="text", stream=stream)
        log.error("worker_crash", pid=123, when="mid-request")
        line = stream.getvalue().strip()
        assert "ERROR" in line
        assert "worker_crash" in line
        assert "pid=123" in line

    def test_ambient_request_id_is_folded_in(self):
        stream = io.StringIO()
        log.configure(format="json", stream=stream)
        with use_request_id("rid-77"):
            log.info("compile")
        log.info("after")
        records = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert records[0]["request_id"] == "rid-77"
        assert "request_id" not in records[1]

    def test_explicit_request_id_wins_over_ambient(self):
        stream = io.StringIO()
        log.configure(format="json", stream=stream)
        with use_request_id("ambient"):
            log.info("evt", request_id="explicit")
        record = json.loads(stream.getvalue())
        assert record["request_id"] == "explicit"

    def test_env_variable_enables_logging(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        log.reset()
        assert log.log_format() == "json"
        assert log.enabled()

    def test_configured_format_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "json")
        log.configure(format="off")
        assert log.log_format() == "off"

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            log.configure(format="xml")

    def test_log_file_destination(self, tmp_path, monkeypatch):
        path = tmp_path / "server.log"
        monkeypatch.setenv("REPRO_LOG", "json")
        monkeypatch.setenv("REPRO_LOG_FILE", str(path))
        log.reset()
        log.info("boot", pid=1)
        log.info("ready", pid=1)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [r["event"] for r in records] == ["boot", "ready"]

    def test_none_valued_fields_are_dropped(self):
        stream = io.StringIO()
        log.configure(format="json", stream=stream)
        log.info("evt", keep=0, drop=None)
        record = json.loads(stream.getvalue())
        assert record["keep"] == 0
        assert "drop" not in record


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_family_with_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", "Jobs.", labels=("status",))
        family.labels(status="ok").inc()
        family.labels(status="ok").inc()
        family.labels(status="error").inc()
        rendered = registry.render()
        assert "# HELP jobs_total Jobs." in rendered
        assert "# TYPE jobs_total counter" in rendered
        assert 'jobs_total{status="error"} 1' in rendered
        assert 'jobs_total{status="ok"} 2' in rendered

    def test_labels_render_sorted_by_name(self):
        assert (
            format_labels({"b": "2", "a": "1"}) == '{a="1",b="2"}'
        )
        assert format_labels({}) == ""

    def test_format_value_renders_integral_floats_as_ints(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            family.observe(value)
        rendered = registry.render()
        assert 'latency_seconds_bucket{le="0.1"} 1' in rendered
        assert 'latency_seconds_bucket{le="1"} 2' in rendered
        assert 'latency_seconds_bucket{le="+Inf"} 3' in rendered
        assert "latency_seconds_count 3" in rendered

    def test_same_name_same_kind_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "X.")
        b = registry.counter("x_total", "X.")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X.")
        with pytest.raises(ValueError):
            registry.counter("x_total", "X.", labels=("other",))

    def test_gauge_callback_sampled_at_render(self):
        registry = MetricsRegistry()
        values = [1.0, 2.5]
        registry.gauge_callback("live_gauge", "Live.", lambda: values[-1])
        assert "live_gauge 2.5" in registry.render()
        values.append(7.0)
        assert "live_gauge 7" in registry.render()

    def test_broken_gauge_callback_is_skipped(self):
        registry = MetricsRegistry()
        registry.counter("ok_total", "OK.").inc()

        def broken():
            raise RuntimeError("no data")

        registry.gauge_callback("broken_gauge", "Broken.", broken)
        rendered = registry.render()
        assert "ok_total 1" in rendered
        assert "broken_gauge" not in rendered

    def test_default_buckets_are_sorted(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestTraceCli:
    def test_compile_trace_then_render(self, tmp_path, capsys):
        from repro.cli import main

        trace_file = tmp_path / "out.json"
        assert (
            main(["compile", "demo", "--kernel", "fir", "--trace", str(trace_file)])
            == 0
        )
        capsys.readouterr()
        trace = json.loads(trace_file.read_text())
        assert any(
            e.get("name") == "pass:select"
            for e in trace["traceEvents"]
            if e.get("ph") == "X"
        )
        assert main(["trace", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "compile" in output
        assert "pass:select" in output

    def test_trace_on_the_fly_compile(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "otf.json"
        assert (
            main(
                [
                    "trace",
                    "--target",
                    "demo",
                    "--kernel",
                    "fir_loop",
                    "--out",
                    str(out),
                    "--no-cache",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "select:block" in output
        trace = json.loads(out.read_text())
        names = {
            e.get("name")
            for e in trace["traceEvents"]
            if e.get("ph") == "X"
        }
        # a cold cache traces the retargeting phases too
        assert "retarget:extraction" in names
        assert "tables:build" in names

    def test_trace_rejects_file_plus_target(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", str(tmp_path / "x.json"), "--target", "demo"])

    def test_trace_needs_some_input(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace"])

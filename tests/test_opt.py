"""Unit tests for the ``repro.opt`` IR optimization subsystem.

Covers the value-numbered expression DAG (versioning, use counts),
constant folding and algebraic rewriting (word-wrap agreement with the
simulator, port-read and target-capability gates), cross-statement CSE
with dead-temporary elimination, the composable pipeline with its
statistics, copy hygiene of optimizer output, and the toolchain/CLI
integration (``opt`` pass, ``--no-opt``, ``repro opt``).
"""

import pytest

from repro.frontend.lowering import lower_to_program
from repro.ir import WORD_BITS, wrap_word
from repro.ir.expr import Const, Op, PortInput, VarRef, evaluate_expr, expr_size
from repro.ir.program import BasicBlock, Program, Statement
from repro.opt import (
    OptimizationError,
    OptPipeline,
    OptStats,
    build_block_dag,
    contains_port_read,
    copy_program,
    eliminate_common_subexpressions,
    eliminate_dead_temporaries,
    fold_expr,
    optimize_program,
    structurally_equal,
)
from repro.toolchain import PipelineConfig, Session


def _program(statements, scalars, name="p", arrays=None):
    return Program(
        name=name,
        blocks=[BasicBlock(name="entry", statements=list(statements))],
        scalars=list(scalars),
        arrays=dict(arrays or {}),
    )


def _mul(a, b):
    return Op("mul", (a, b))


def _add(a, b):
    return Op("add", (a, b))


# ---------------------------------------------------------------------------
# Expression DAG
# ---------------------------------------------------------------------------


class TestExprDAG:
    def test_identical_subtrees_share_one_node(self):
        shared = lambda: _add(_mul(VarRef("a"), VarRef("b")), VarRef("c"))  # noqa: E731
        block = BasicBlock(
            name="entry",
            statements=[
                Statement("y0", shared()),
                Statement("y1", shared()),
            ],
        )
        builder = build_block_dag(block)
        assert builder.roots[0] == builder.roots[1]
        assert builder.dag.uses[builder.roots[0]] == 2

    def test_write_between_occurrences_splits_value_numbers(self):
        expr = lambda: _add(VarRef("a"), VarRef("b"))  # noqa: E731
        block = BasicBlock(
            name="entry",
            statements=[
                Statement("y0", expr()),
                Statement("a", Const(1)),
                Statement("y1", expr()),
            ],
        )
        builder = build_block_dag(block)
        assert builder.roots[0] != builder.roots[2]

    def test_self_read_uses_pre_write_version(self):
        # ``x = x + 1`` reads the old x; a later ``y = x + 1`` reads the
        # new one and must not share the node.
        block = BasicBlock(
            name="entry",
            statements=[
                Statement("x", _add(VarRef("x"), Const(1))),
                Statement("y", _add(VarRef("x"), Const(1))),
            ],
        )
        builder = build_block_dag(block)
        assert builder.roots[0] != builder.roots[1]

    def test_use_counts_are_edge_counts(self):
        # The inner product only ever appears inside the repeated sum:
        # one parent edge, not two.
        product = lambda: _mul(VarRef("a"), VarRef("b"))  # noqa: E731
        total = lambda: _add(product(), VarRef("c"))  # noqa: E731
        block = BasicBlock(
            name="entry",
            statements=[Statement("y0", total()), Statement("y1", total())],
        )
        builder = build_block_dag(block)
        dag = builder.dag
        root = builder.roots[0]
        assert dag.uses[root] == 2
        (product_id,) = [
            node.id
            for node in dag.nodes
            if node.kind == "op" and node.label == "mul"
        ]
        assert dag.uses[product_id] == 1

    def test_port_reads_poison_subtrees(self):
        block = BasicBlock(
            name="entry",
            statements=[Statement("y", _add(PortInput("IN"), VarRef("a")))],
        )
        builder = build_block_dag(block)
        assert builder.dag.has_port[builder.roots[0]]

    def test_to_expr_builds_fresh_equivalent_trees(self):
        original = _add(_mul(VarRef("a"), Const(3)), VarRef("a"))
        block = BasicBlock(name="entry", statements=[Statement("y", original)])
        builder = build_block_dag(block)
        rebuilt = builder.dag.to_expr(builder.roots[0])
        assert structurally_equal(rebuilt, original)
        assert rebuilt is not original

    def test_port_writes_version_port_reads(self):
        # Writing the output port @OUT between two @OUT reads splits them.
        read = lambda: _add(PortInput("OUT"), Const(1))  # noqa: E731
        block = BasicBlock(
            name="entry",
            statements=[
                Statement("y0", read()),
                Statement("@OUT", Const(5)),
                Statement("y1", read()),
            ],
        )
        builder = build_block_dag(block)
        assert builder.roots[0] != builder.roots[2]


# ---------------------------------------------------------------------------
# Folding and algebraic rewriting
# ---------------------------------------------------------------------------


class TestFold:
    def test_constant_subtrees_fold_to_wrapped_constants(self):
        expr = _add(Const(40000), Const(40000))
        folded = fold_expr(expr)
        assert folded == Const(wrap_word(80000))
        assert evaluate_expr(folded, {}) == evaluate_expr(expr, {})

    def test_out_of_range_literals_are_canonicalized(self):
        rewrites = {}
        folded = fold_expr(Const((1 << WORD_BITS) + 5), rewrites=rewrites)
        assert folded == Const(5)
        assert rewrites["const-wrap"] == 1

    @pytest.mark.parametrize(
        "expr, expected",
        [
            (_add(VarRef("x"), Const(0)), VarRef("x")),
            (_add(Const(0), VarRef("x")), VarRef("x")),
            (Op("sub", (VarRef("x"), Const(0))), VarRef("x")),
            (_mul(VarRef("x"), Const(1)), VarRef("x")),
            (_mul(Const(1), VarRef("x")), VarRef("x")),
            (_mul(VarRef("x"), Const(0)), Const(0)),
            (Op("div", (VarRef("x"), Const(1))), VarRef("x")),
            (Op("or", (VarRef("x"), Const(0))), VarRef("x")),
            (Op("xor", (Const(0), VarRef("x"))), VarRef("x")),
            (Op("and", (VarRef("x"), Const(wrap_word(-1)))), VarRef("x")),
            (Op("and", (VarRef("x"), Const(0))), Const(0)),
            (Op("shl", (VarRef("x"), Const(0))), VarRef("x")),
            (Op("sub", (VarRef("x"), VarRef("x"))), Const(0)),
            (Op("xor", (VarRef("x"), VarRef("x"))), Const(0)),
            (Op("neg", (Op("neg", (VarRef("x"),)),)), VarRef("x")),
            (Op("not", (Op("not", (VarRef("x"),)),)), VarRef("x")),
        ],
    )
    def test_algebraic_identities(self, expr, expected):
        assert fold_expr(expr) == expected

    @pytest.mark.parametrize("value", [17, 42, 255])
    def test_identities_preserve_evaluation(self, value):
        cases = [
            _add(VarRef("x"), Const(0)),
            _mul(VarRef("x"), Const(8)),
            Op("div", (VarRef("x"), Const(4))),
            Op("sub", (VarRef("x"), VarRef("x"))),
            Op("neg", (Op("neg", (VarRef("x"),)),)),
            _mul(VarRef("x"), Const(0)),
        ]
        for expr in cases:
            folded = fold_expr(expr)
            assert evaluate_expr(folded, {"x": value}) == evaluate_expr(
                expr, {"x": value}
            ), expr

    def test_strength_reduction_to_shifts(self):
        folded = fold_expr(_mul(VarRef("x"), Const(8)))
        assert folded == Op("shl", (VarRef("x"), Const(3)))
        folded = fold_expr(Op("div", (VarRef("x"), Const(4))))
        assert folded == Op("shr", (VarRef("x"), Const(2)))

    def test_strength_reduction_respects_target_vocabulary(self):
        # A target without shifters must keep the multiply.
        expr = _mul(VarRef("x"), Const(8))
        kept = fold_expr(expr, supported_ops=set())
        assert kept == expr
        reduced = fold_expr(expr, supported_ops={"shl"})
        assert reduced == Op("shl", (VarRef("x"), Const(3)))

    def test_strength_reduction_honours_hardwired_shift_amounts(self):
        # "shl:1" allows exactly shift-by-one (x * 2), nothing wider --
        # the shape target grammars with an x + x datapath hardwire.
        assert fold_expr(
            _mul(VarRef("x"), Const(2)), supported_ops={"shl:1"}
        ) == Op("shl", (VarRef("x"), Const(1)))
        expr = _mul(VarRef("x"), Const(8))
        assert fold_expr(expr, supported_ops={"shl:1"}) == expr

    def test_value_discarding_rules_never_delete_port_reads(self):
        expr = _mul(PortInput("IN"), Const(0))
        assert fold_expr(expr) == expr  # the port read must survive
        assert fold_expr(Op("sub", (PortInput("IN"), PortInput("IN")))) == Op(
            "sub", (PortInput("IN"), PortInput("IN"))
        )
        assert contains_port_read(expr)

    def test_nested_rewrites_reach_fixpoint_in_one_pass(self):
        expr = _mul(_add(VarRef("x"), Const(0)), Const(1))
        assert fold_expr(expr) == VarRef("x")

    def test_comparison_conditions_fold_to_truth_values(self):
        assert fold_expr(Op("lt", (Const(3), Const(5)))) == Const(1)
        assert fold_expr(Op("eq", (Const(3), Const(5)))) == Const(0)
        assert fold_expr(Op("lnot", (Const(0),))) == Const(1)

    def test_deep_chains_fold_without_recursion_error(self):
        expression = VarRef("a")
        for _ in range(3000):
            expression = _add(expression, Const(0))
        assert fold_expr(expression) == VarRef("a")

    def test_structural_equality_is_deep_safe(self):
        deep = VarRef("a")
        for _ in range(3000):
            deep = _add(deep, Const(1))
        assert structurally_equal(deep, deep)
        # sub(deep, deep) folds without blowing the recursion limit.
        assert fold_expr(Op("sub", (deep, deep))) == Const(0)


# ---------------------------------------------------------------------------
# CSE and DCE
# ---------------------------------------------------------------------------


class TestCSE:
    def _shared(self):
        return _add(_mul(VarRef("a"), VarRef("b")), _mul(VarRef("c"), VarRef("d")))

    def test_repeated_subexpression_is_materialized_once(self):
        program = _program(
            [
                Statement("y0", _add(self._shared(), VarRef("e"))),
                Statement("y1", Op("sub", (self._shared(), VarRef("f")))),
            ],
            scalars=["a", "b", "c", "d", "e", "f", "y0", "y1"],
        )
        counters = {}
        optimized = eliminate_common_subexpressions(program, counters=counters)
        statements = optimized.blocks[0].statements
        assert len(statements) == 3
        assert statements[0].destination == "__cse0"
        assert structurally_equal(statements[0].expression, self._shared())
        assert statements[1].expression == _add(VarRef("__cse0"), VarRef("e"))
        assert counters["temps_introduced"] == 1
        assert counters["cse_hits"] == 2
        assert "__cse0" in optimized.scalars

    def test_write_hazard_blocks_cse(self):
        program = _program(
            [
                Statement("y0", _add(self._shared(), VarRef("e"))),
                Statement("a", Const(3)),
                Statement("y1", _add(self._shared(), VarRef("e"))),
            ],
            scalars=["a", "b", "c", "d", "e", "y0", "y1"],
        )
        optimized = eliminate_common_subexpressions(program)
        assert all(
            not s.destination.startswith("__cse")
            for s in optimized.blocks[0].statements
        )

    def test_small_and_rare_nodes_are_not_materialized(self):
        # A single product (one operator node) repeated twice stays inline.
        program = _program(
            [
                Statement("y0", _mul(VarRef("a"), VarRef("b"))),
                Statement("y1", _mul(VarRef("a"), VarRef("b"))),
            ],
            scalars=["a", "b", "y0", "y1"],
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized.blocks[0].statements) == 2

    def test_port_reading_subexpressions_are_never_materialized(self):
        shared = lambda: _add(  # noqa: E731
            _mul(PortInput("IN"), VarRef("b")), VarRef("c")
        )
        program = _program(
            [Statement("y0", shared()), Statement("y1", shared())],
            scalars=["b", "c", "y0", "y1"],
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized.blocks[0].statements) == 2

    def test_within_statement_duplicates_are_shared(self):
        shared = self._shared()
        program = _program(
            [Statement("y0", _mul(self._shared(), self._shared()))],
            scalars=["a", "b", "c", "d", "y0"],
        )
        optimized = eliminate_common_subexpressions(program)
        statements = optimized.blocks[0].statements
        assert len(statements) == 2
        assert statements[0].destination == "__cse0"
        assert structurally_equal(statements[0].expression, shared)
        assert statements[1].expression == _mul(VarRef("__cse0"), VarRef("__cse0"))

    def test_nested_candidates_materialize_inner_first(self):
        inner = lambda: _add(_mul(VarRef("a"), VarRef("b")), VarRef("c"))  # noqa: E731
        outer = lambda: _mul(inner(), VarRef("d"))  # noqa: E731
        program = _program(
            [
                Statement("y0", _add(outer(), inner())),
                Statement("y1", Op("sub", (outer(), VarRef("e")))),
            ],
            scalars=["a", "b", "c", "d", "e", "y0", "y1"],
        )
        optimized = eliminate_common_subexpressions(program)
        statements = optimized.blocks[0].statements
        # inner (__cse0) is defined before outer (__cse1) which reads it.
        assert [s.destination for s in statements[:2]] == ["__cse0", "__cse1"]
        assert structurally_equal(statements[0].expression, inner())
        assert statements[1].expression == _mul(VarRef("__cse0"), VarRef("d"))

    def test_semantics_preserved_on_random_environments(self):
        program = _program(
            [
                Statement("y0", _add(self._shared(), VarRef("e"))),
                Statement("a", _add(VarRef("a"), Const(1))),
                Statement("y1", _add(self._shared(), VarRef("e"))),
                Statement("y2", _mul(self._shared(), self._shared())),
            ],
            scalars=["a", "b", "c", "d", "e", "y0", "y1", "y2"],
        )
        optimized = eliminate_common_subexpressions(program)
        for seed in range(5):
            env = {
                name: (seed * 31 + i * 17 + 3) % 257
                for i, name in enumerate(sorted(program.all_variables()))
            }
            expected = program.blocks[0].execute(dict(env))
            got = optimized.blocks[0].execute(dict(env))
            for key, value in expected.items():
                assert got[key] == value, key


class TestDCE:
    def test_dead_temporaries_are_removed(self):
        program = _program(
            [
                Statement("__cse0", _add(VarRef("a"), VarRef("b"))),
                Statement("__cse1", _mul(VarRef("a"), VarRef("b"))),
                Statement("y", _add(VarRef("__cse0"), VarRef("c"))),
            ],
            scalars=["a", "b", "c", "y", "__cse0", "__cse1"],
        )
        counters = {}
        cleaned = eliminate_dead_temporaries(program, counters=counters)
        assert [s.destination for s in cleaned.blocks[0].statements] == [
            "__cse0",
            "y",
        ]
        assert counters["dead_removed"] == 1
        assert "__cse1" not in cleaned.scalars

    def test_user_destinations_are_never_removed(self):
        program = _program(
            [
                Statement("dead", Const(1)),  # user variable: observable
                Statement("y", _add(VarRef("a"), VarRef("b"))),
            ],
            scalars=["a", "b", "dead", "y"],
        )
        cleaned = eliminate_dead_temporaries(program)
        assert len(cleaned.blocks[0].statements) == 2

    def test_temp_chains_are_removed_transitively(self):
        program = _program(
            [
                Statement("__cse0", _add(VarRef("a"), VarRef("b"))),
                Statement("__cse1", _mul(VarRef("__cse0"), VarRef("c"))),
            ],
            scalars=["a", "b", "c", "__cse0", "__cse1"],
        )
        cleaned = eliminate_dead_temporaries(program)
        assert cleaned.blocks[0].statements == []


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


class TestOptPipeline:
    def test_unknown_stage_rejected(self):
        with pytest.raises(OptimizationError):
            OptPipeline(stages=["fold", "inline"])

    def test_stats_round_trip(self):
        program = lower_to_program(
            "int a, b, y0, y1;\n"
            "y0 = (a * b + a) + 0;\n"
            "y1 = (a * b + a) * 1;\n"
        )
        _optimized, stats = optimize_program(program)
        assert stats.nodes_before > stats.nodes_after
        assert stats.algebraic >= 2  # add-zero, mul-one
        assert stats.temps_introduced == 1
        # The default pipeline runs the dominator-scoped global CSE, so
        # the hits land in the gvn counter (block-local cse reports the
        # identical rewrite under cse_hits, see test_stage_subsets).
        assert stats.gvn_hits == 2
        assert stats.cse_hits == 0
        rebuilt = OptStats.from_dict(stats.to_dict())
        assert rebuilt == stats
        assert 0.0 < stats.node_reduction < 1.0

    def test_stage_subsets(self):
        program = lower_to_program(
            "int a, b, c, y0, y1;\n"
            "y0 = a * b + c * 1;\n"
            "y1 = a * b + c * 1;\n"
        )
        folded, fold_stats = optimize_program(program, stages=["fold"])
        assert fold_stats.temps_introduced == 0
        assert fold_stats.algebraic >= 2
        cse_only, cse_stats = optimize_program(program, stages=["cse"])
        assert cse_stats.folds == 0 and cse_stats.algebraic == 0
        assert cse_stats.temps_introduced >= 1
        assert folded.statement_count() == 2
        assert cse_only.statement_count() >= 3

    def test_optimizer_output_never_aliases_the_input(self):
        program = lower_to_program(
            "int a, b, y0, y1;\ny0 = a * b + a;\ny1 = a * b + a;\n"
        )
        for stages in (None, ["fold"], ["cse"], ["dce"], []):
            optimized, _stats = optimize_program(program, stages=stages)
            assert optimized is not program
            input_statements = {
                id(s) for block in program.blocks for s in block.statements
            }
            input_exprs = set()
            for block in program.blocks:
                for statement in block.statements:
                    stack = [statement.expression]
                    while stack:
                        node = stack.pop()
                        input_exprs.add(id(node))
                        stack.extend(node.children())
            for block in optimized.blocks:
                assert block is not program.blocks[0]
                for statement in block.statements:
                    assert id(statement) not in input_statements
                    stack = [statement.expression]
                    while stack:
                        node = stack.pop()
                        assert id(node) not in input_exprs, stages
                        stack.extend(node.children())

    def test_mutation_isolation_regression(self):
        # Mutating the input program after optimization must not leak
        # into the optimized program, and vice versa (the PR 1
        # ``code.instances`` aliasing fix, at the IR level).
        program = lower_to_program("int a, b, y;\ny = a * b + a;\n")
        optimized, _stats = optimize_program(program)
        before = [str(s) for s in optimized.blocks[0].statements]
        program.blocks[0].statements[0].destination = "mutated"
        program.blocks[0].statements.append(Statement("z", Const(1)))
        program.scalars.append("z")
        assert [str(s) for s in optimized.blocks[0].statements] == before
        optimized.blocks[0].statements[0].destination = "other"
        assert program.blocks[0].statements[0].destination == "mutated"

    def test_copy_program_is_deep(self):
        program = lower_to_program("int a, y;\ny = a + 1;\n")
        clone = copy_program(program)
        assert clone.blocks[0].statements[0] is not program.blocks[0].statements[0]
        assert (
            clone.blocks[0].statements[0].expression
            is not program.blocks[0].statements[0].expression
        )
        assert str(clone.blocks[0].statements[0]) == str(
            program.blocks[0].statements[0]
        )

    def test_user_variable_with_temp_like_name_is_preserved(self):
        # A user is free to declare a scalar called "__cse0": its
        # assignment must survive DCE, and CSE must allocate a
        # non-colliding temporary name.
        shared = lambda: Op(  # noqa: E731
            "add", (_mul(VarRef("a"), VarRef("b")), _mul(VarRef("c"), VarRef("d")))
        )
        program = _program(
            [
                Statement("__cse0", Const(7)),
                Statement("y0", _add(shared(), VarRef("__cse0"))),
                Statement("y1", Op("sub", (shared(), VarRef("e")))),
            ],
            scalars=["a", "b", "c", "d", "e", "y0", "y1", "__cse0"],
        )
        optimized, stats = optimize_program(program)
        assert stats.temps_introduced == 1
        assert stats.dead_removed == 0
        destinations = [s.destination for s in optimized.blocks[0].statements]
        assert destinations.count("__cse0") == 1  # the user's assignment
        temp_names = [d for d in destinations if d.startswith("__cse") and d != "__cse0"]
        assert temp_names and temp_names[0] != "__cse0"
        assert "__cse0" in optimized.scalars
        env = {"a": 3, "b": 4, "c": 5, "d": 6, "e": 2}
        expected = program.blocks[0].execute(dict(env))
        got = optimized.blocks[0].execute(dict(env))
        assert got["__cse0"] == expected["__cse0"] == 7
        assert got["y0"] == expected["y0"]
        assert got["y1"] == expected["y1"]

    def test_dce_only_pipeline_uses_prefix_semantics(self):
        # Without a cse stage in the run there is no exact temp set, so
        # "--stages dce" falls back to prefix-based removal instead of
        # silently doing nothing.
        program = _program(
            [
                Statement("__cse0", _add(VarRef("a"), VarRef("b"))),
                Statement("y", VarRef("a")),
            ],
            scalars=["a", "b", "y", "__cse0"],
        )
        optimized, stats = optimize_program(program, stages=["dce"])
        assert stats.dead_removed == 1
        assert [s.destination for s in optimized.blocks[0].statements] == ["y"]

    def test_empty_pipeline_still_copies(self):
        program = lower_to_program("int a, y;\ny = a + 1;\n")
        optimized, stats = optimize_program(program, stages=[])
        assert optimized is not program
        assert stats.nodes_before == stats.nodes_after


# ---------------------------------------------------------------------------
# Word-width unification (overflow regression)
# ---------------------------------------------------------------------------


class TestWordWidthUnification:
    def test_wrap_word_is_the_single_authority(self):
        from repro.ir import expr as expr_module

        import repro.ir as ir_package

        assert ir_package.wrap_word is expr_module.wrap_word

    def test_lowering_wraps_out_of_range_literals(self):
        program = lower_to_program("int y;\ny = %d;\n" % ((1 << WORD_BITS) + 9))
        assert program.blocks[0].statements[0].expression == Const(9)

    def test_folded_overflow_agrees_with_simulated_execution(self, tms_result):
        # 40000 + 40000 wraps to 14464 on the 16-bit machine: the folded
        # constant and the simulated unoptimized addition must agree.
        source = "int y;\ny = 40000 + 40000;\n"
        optimized = Session(tms_result).compile(source)
        unoptimized = Session(
            tms_result, config=PipelineConfig(use_optimizer=False)
        ).compile(source)
        expected = wrap_word(40000 + 40000)
        assert expected == 14464
        assert optimized.simulate({})["y"] == expected
        assert unoptimized.simulate({})["y"] == expected
        assert optimized.metrics.opt_folds >= 1


# ---------------------------------------------------------------------------
# Toolchain integration
# ---------------------------------------------------------------------------

CSE_SOURCE = (
    "int a, b, c, d, e, f, y0, y1, y2;\n"
    "y0 = a * b + c * d + e;\n"
    "y1 = a * b + c * d - f;\n"
    "y2 = a * b + c * d;\n"
)


class TestOptimizationPassIntegration:
    def test_opt_pass_runs_by_default_and_fills_metrics(self, demo_result):
        compiled = Session(demo_result).compile(CSE_SOURCE, name="cse")
        assert "opt" in compiled.pass_timings
        metrics = compiled.metrics
        assert metrics.opt_nodes_before > metrics.opt_nodes_after
        assert metrics.opt_temps == 1
        # The default pipeline routes redundancy elimination through the
        # dominator-ordered GVN stage, so hits land in opt_gvn_hits.
        assert metrics.opt_gvn_hits >= 2
        assert metrics.opt_cse_hits == 0
        # The optimizer block survives serialization.
        rebuilt = type(compiled).from_dict(compiled.to_dict())
        assert rebuilt.metrics.opt_temps == 1

    def test_no_opt_config_restores_pre_optimizer_pipeline(self, demo_result):
        session = Session(demo_result, config=PipelineConfig(use_optimizer=False))
        compiled = session.compile(CSE_SOURCE, name="cse")
        assert "opt" not in compiled.pass_timings
        assert compiled.metrics.opt_nodes_before == 0
        assert compiled.metrics.opt_temps == 0

    def test_optimized_code_is_smaller_on_cse_heavy_input(self, demo_result):
        optimized = Session(demo_result).compile(CSE_SOURCE)
        unoptimized = Session(
            demo_result, config=PipelineConfig(use_optimizer=False)
        ).compile(CSE_SOURCE)
        assert optimized.code_size < unoptimized.code_size
        assert optimized.metrics.nodes_labelled <= unoptimized.metrics.nodes_labelled

    def test_result_program_is_fresh_not_the_callers(self, demo_result):
        program = lower_to_program(CSE_SOURCE, name="cse")
        compiled = Session(demo_result).compile_program(program)
        assert compiled.program is not program
        assert compiled.program.name == program.name
        # The caller's program is untouched (no CSE temps injected).
        assert all(
            not s.destination.startswith("__cse")
            for s in program.blocks[0].statements
        )
        assert any(
            s.destination.startswith("__cse")
            for s in compiled.program.blocks[0].statements
        )

    def test_strength_reduction_only_on_coverable_shapes(
        self, tms_result, ref_result
    ):
        from repro.toolchain.passes import introducible_ops

        # tms320c25 covers mul-by-const but has no shifter rules at all:
        # mul-by-8 must stay a multiply and keep compiling.
        assert introducible_ops(tms_result.grammar) == set()
        source8 = "int a, y;\ny = a * 8;\n"
        compiled = Session(tms_result).compile(source8)
        assert compiled.code_size > 0
        assert compiled.simulate({"a": 5})["y"] == 40
        # ref only hardwires shift-by-one (an x + x datapath): mul-by-2
        # strength-reduces, mul-by-8 must NOT (shl-by-3 is uncoverable
        # there even though "shl" is in the vocabulary).
        assert introducible_ops(ref_result.grammar) == {"shl:1"}
        for source in (source8, "int a, y;\ny = a * 2;\n"):
            ref_opt = Session(ref_result).compile(source)
            ref_raw = Session(
                ref_result, config=PipelineConfig(use_optimizer=False)
            ).compile(source)
            assert ref_opt.code_size <= ref_raw.code_size
            assert (
                ref_opt.simulate({"a": 5})["y"] == ref_raw.simulate({"a": 5})["y"]
            )

    def test_deep_chain_still_compiles_with_optimizer(self, demo_result):
        expression = VarRef("a")
        for _ in range(2500):
            expression = Op("add", (expression, Const(1)))
        program = _program([Statement("acc", expression)], scalars=["a", "acc"])
        session = Session(
            demo_result,
            config=PipelineConfig(use_scheduling=False, use_compaction=False),
        )
        compiled = session.compile_program(program)
        assert compiled.code_size >= 2500
        assert compiled.metrics.opt_nodes_before == expr_size(expression)

    def test_selector_key_ignores_the_optimizer_knob(self):
        assert (
            PipelineConfig().selector_key()
            == PipelineConfig(use_optimizer=False).selector_key()
        )

    def test_sessions_share_selector_across_opt_configs(self, demo_result):
        with_opt = Session(demo_result)
        without = Session(demo_result, config=PipelineConfig(use_optimizer=False))
        assert with_opt.selector is without.selector


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestOptCli:
    def test_opt_subcommand_prints_before_and_after(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.c"
        path.write_text(CSE_SOURCE)
        assert main(["opt", str(path)]) == 0
        output = capsys.readouterr().out
        assert "== before" in output and "== after" in output
        assert "__cse0" in output
        assert "temp(s) introduced" in output

    def test_opt_subcommand_kernel_and_stage_subset(self, capsys):
        from repro.cli import main

        assert main(["opt", "--kernel", "fir", "--stages", "fold"]) == 0
        output = capsys.readouterr().out
        assert "0 temp(s) introduced" in output

    def test_opt_subcommand_rejects_unknown_stage(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["opt", "--kernel", "fir", "--stages", "vectorize"])

    def test_opt_subcommand_needs_a_source(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["opt"])

    def test_compile_no_opt_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.c"
        path.write_text(CSE_SOURCE)
        assert main(["compile", "demo", str(path), "--no-cache"]) == 0
        optimized = capsys.readouterr().out
        assert main(["compile", "demo", str(path), "--no-cache", "--no-opt"]) == 0
        unoptimized = capsys.readouterr().out
        assert "__cse0" in optimized
        assert "__cse0" not in unoptimized

    def test_compile_timings_shows_optimizer_line(self, capsys):
        from repro.cli import main

        assert main(
            ["compile", "demo", "--kernel", "real_update", "--timings", "--no-cache"]
        ) == 0
        output = capsys.readouterr().out
        assert "optimizer:" in output

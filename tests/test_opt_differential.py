"""Differential correctness suite for the IR optimizer.

For every registered target x every DSPStone kernel (and a set of
synthetic CSE/fold-heavy programs), the optimized pipeline must be
*observably equivalent* to the unoptimized one under the RT simulator --
same final values for every user-visible variable and port, on several
deterministic environments -- and optimized code size (instruction
words, and RT operation count) must never be worse.  Compiler
temporaries (``__cse*``) are the one permitted difference in the final
environment; everything else must match exactly.

Combinations the *unoptimized* pipeline cannot compile (unbindable
variables on tiny targets, uncoverable statements) are skipped -- but if
the unoptimized pipeline compiles, the optimized one must too: the
optimizer never narrows the set of ingestible programs.
"""

import pytest

from repro.diagnostics import ReproError
from repro.dspstone import all_kernel_names, kernel_program, loop_kernel_names
from repro.frontend.lowering import lower_to_program
from repro.ir.binding import BindingError
from repro.opt import OPT_TEMP_PREFIXES
from repro.targets.library import all_target_names
from repro.toolchain import PipelineConfig, Session

#: Deterministic simulation environments (several, so a value-dependent
#: bug cannot hide behind one lucky assignment).  All values non-zero.
SEEDS = (0, 1, 2)


def _environment(program, seed):
    return {
        name: (seed * 41 + index * 17 + 3) % 251 + 1
        for index, name in enumerate(sorted(program.all_variables()))
    }


def _observable(environment):
    return {
        name: value
        for name, value in environment.items()
        if not name.startswith(OPT_TEMP_PREFIXES)
    }


def _compile_pair(retarget_result, program):
    """(optimized, unoptimized) results, or None when the *unoptimized*
    pipeline cannot handle the program on this target."""
    plain = Session(retarget_result, config=PipelineConfig(use_optimizer=False))
    try:
        unoptimized = plain.compile_program(program)
    except (BindingError, ReproError):
        return None
    # If the baseline compiles, the optimized pipeline must too.
    optimized = Session(retarget_result).compile_program(program)
    return optimized, unoptimized


def _assert_equivalent_and_never_worse(pair, program, context):
    optimized, unoptimized = pair
    assert optimized.code_size <= unoptimized.code_size, (
        "%s: optimized code size %d worse than unoptimized %d"
        % (context, optimized.code_size, unoptimized.code_size)
    )
    assert optimized.operation_count <= unoptimized.operation_count, context
    for seed in SEEDS:
        environment = _environment(program, seed)
        got = _observable(optimized.simulate(dict(environment)))
        expected = _observable(unoptimized.simulate(dict(environment)))
        assert got == expected, context


class TestKernelsDifferential:
    @pytest.mark.parametrize("target", sorted(all_target_names()))
    def test_all_kernels_equivalent_and_never_worse(self, target, retarget_results):
        result = retarget_results[target]
        compared = 0
        for kernel in all_kernel_names():
            program = kernel_program(kernel)
            pair = _compile_pair(result, program)
            if pair is None:
                continue
            compared += 1
            _assert_equivalent_and_never_worse(
                pair, program, "%s/%s" % (target, kernel)
            )
        if compared == 0:
            # Tiny pedagogical targets (no multiplier / no data memory
            # for the kernel arrays) compile no DSPStone kernel at all --
            # with or without the optimizer.
            pytest.skip("no DSPStone kernel compiles on %s" % target)

    @pytest.mark.parametrize("target", sorted(all_target_names()))
    def test_all_loop_kernels_equivalent_and_never_worse(
        self, target, retarget_results
    ):
        """The loop-form kernels exercise the whole global pipeline
        (rotation, LICM, GVN, hardware-loop annotation): optimized must
        stay observably equal to unoptimized and never larger."""
        result = retarget_results[target]
        compared = 0
        for kernel in loop_kernel_names():
            program = kernel_program(kernel)
            pair = _compile_pair(result, program)
            if pair is None:
                continue
            compared += 1
            _assert_equivalent_and_never_worse(
                pair, program, "%s/%s" % (target, kernel)
            )
        if compared == 0:
            pytest.skip("no loop kernel compiles on %s" % target)


#: Synthetic programs exercising exactly the rewrites the kernels do not
#: contain: cross-statement CSE, within-statement duplication, folding,
#: identities, and write hazards that must block CSE.
SYNTHETIC_SOURCES = {
    "cse_chain": (
        "int a, b, c, d, e, f, y0, y1, y2, y3;\n"
        "y0 = a * b + c * d + e;\n"
        "y1 = a * b + c * d - f;\n"
        "y2 = a * b + c * d;\n"
        "y3 = a * b + c * d + f;\n"
    ),
    "cse_within_statement": (
        "int a, b, c, y;\n"
        "y = (a * b + c) * (a * b + c);\n"
    ),
    "cse_write_hazard": (
        "int a, b, c, y0, y1;\n"
        "y0 = a * b + c;\n"
        "a = y0 + 1;\n"
        "y1 = a * b + c;\n"
    ),
    "fold_identities": (
        "int a, b, y0, y1, y2;\n"
        "y0 = a + 0;\n"
        "y1 = (a * 1) + (b - 0);\n"
        "y2 = a - a;\n"
    ),
    "fold_constants": (
        "int a, y0, y1;\n"
        "y0 = a + (3 + 4);\n"
        "y1 = a + 40000 + 40000;\n"
    ),
    "self_reference": (
        "int a, b, acc;\n"
        "acc = a * b + acc;\n"
        "acc = a * b + acc;\n"
    ),
}


class TestSyntheticDifferential:
    @pytest.mark.parametrize("target", sorted(all_target_names()))
    @pytest.mark.parametrize("name", sorted(SYNTHETIC_SOURCES))
    def test_synthetic_equivalent_and_never_worse(
        self, target, name, retarget_results
    ):
        program = lower_to_program(SYNTHETIC_SOURCES[name], name=name)
        pair = _compile_pair(retarget_results[target], program)
        if pair is None:
            pytest.skip("unoptimized pipeline cannot compile %s on %s" % (name, target))
        _assert_equivalent_and_never_worse(
            pair, program, "%s/%s" % (target, name)
        )

    def test_cse_actually_fires_somewhere(self, tms_result):
        program = lower_to_program(SYNTHETIC_SOURCES["cse_chain"], name="cse_chain")
        optimized, unoptimized = _compile_pair(tms_result, program)
        assert optimized.metrics.opt_temps >= 1
        assert optimized.code_size < unoptimized.code_size

    def test_hazard_case_keeps_both_computations(self, tms_result):
        program = lower_to_program(
            SYNTHETIC_SOURCES["cse_write_hazard"], name="hazard"
        )
        optimized, _unoptimized = _compile_pair(tms_result, program)
        assert optimized.metrics.opt_temps == 0


class TestOptimizedAgainstReferenceExecution:
    """The optimized pipeline against the IR-level golden model of the
    *original* program (not just opt-vs-no-opt agreement)."""

    @pytest.mark.parametrize("kernel", sorted(all_kernel_names()))
    def test_kernel_matches_reference_on_tms(self, kernel, tms_result):
        program = kernel_program(kernel)
        pair = _compile_pair(tms_result, program)
        if pair is None:
            pytest.skip("%s not compilable on tms320c25" % kernel)
        optimized, _unoptimized = pair
        for seed in SEEDS:
            environment = _environment(program, seed)
            reference = dict(environment)
            for block in program.blocks:
                reference = block.execute(reference)
            simulated = _observable(optimized.simulate(dict(environment)))
            for name in program.all_variables():
                assert simulated[name] == reference[name], (kernel, name)

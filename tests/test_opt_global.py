"""Unit and oracle tests for the global optimizer layers.

Covers the loop analysis (back edges against a brute-force dominator-set
oracle, natural loops, preheader insertion), the counted-loop
transformations (rotation, strength reduction), cross-block GVN, LICM,
and the end-to-end hardware-loop contract on the TMS320C25: every
loop-form DSPStone kernel must pick up at least one LICM hoist or one
hardware loop, and RT simulation of the optimized compile must agree
with IR-level reference execution of the *original* program.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.loops import (
    back_edges,
    insert_preheaders,
    loop_nesting_forest,
    naive_back_edges,
    natural_loops,
    render_forest,
)
from repro.dspstone import kernel_program, loop_kernel_names
from repro.frontend.lowering import lower_to_program
from repro.ir.program import BasicBlock, CBranch, Jump, Program, Statement
from repro.ir.expr import Const, Op, VarRef
from repro.opt import OPT_TEMP_PREFIXES, OptPipeline, optimize_program
from repro.opt.loops import annotate_hardware_loops, find_counted_loops
from repro.toolchain import Session

SEEDS = (0, 1, 2)


def _environment(program, seed):
    return {
        name: (seed * 41 + index * 17 + 3) % 251 + 1
        for index, name in enumerate(sorted(program.all_variables()))
    }


def _observable(environment):
    return {
        name: value
        for name, value in environment.items()
        if not name.startswith(OPT_TEMP_PREFIXES)
    }


def _assert_same_execution(original, transformed):
    """Reference-execute both programs on several environments and demand
    identical observable final states."""
    for seed in SEEDS:
        environment = _environment(original, seed)
        expected = _observable(original.execute(dict(environment)))
        got = _observable(transformed.execute(dict(environment)))
        # Temporaries aside, every variable of the original must agree.
        for name in original.all_variables():
            assert got[name] == expected[name], (seed, name)


# ---------------------------------------------------------------------------
# Back-edge analysis against the brute-force oracle
# ---------------------------------------------------------------------------


@st.composite
def random_cfgs(draw):
    """Arbitrary small digraphs (irreducible shapes included): entry b0,
    each block 0..2 successors among all blocks."""
    count = draw(st.integers(min_value=1, max_value=8))
    names = ["b%d" % index for index in range(count)]
    edges = {}
    for name in names:
        edges[name] = draw(
            st.lists(
                st.sampled_from(names),
                min_size=0,
                max_size=min(2, count),
                unique=True,
            )
        )
    return ControlFlowGraph.from_edges("b0", edges)


class TestBackEdgeOracle:
    @settings(max_examples=200, deadline=None)
    @given(random_cfgs())
    def test_back_edges_match_naive_dominator_sets(self, cfg):
        assert set(back_edges(cfg)) == set(naive_back_edges(cfg))

    @pytest.mark.parametrize("kernel", sorted(loop_kernel_names()))
    def test_kernel_cfgs_agree_with_oracle(self, kernel):
        cfg = ControlFlowGraph.from_program(kernel_program(kernel))
        assert set(back_edges(cfg)) == set(naive_back_edges(cfg))
        forest = loop_nesting_forest(cfg)
        assert len(forest) == 1  # every loop kernel is a single loop
        assert render_forest(forest)  # renders without error

    def test_nested_loop_forest_depths(self):
        cfg = ControlFlowGraph.from_edges(
            "entry",
            {
                "entry": ["outer"],
                "outer": ["inner", "exit"],
                "inner": ["inner", "outer"],
                "exit": [],
            },
        )
        forest = loop_nesting_forest(cfg)
        assert forest.roots == ["outer"]
        assert forest.children["outer"] == ["inner"]
        assert forest.loops["outer"].depth == 1
        assert forest.loops["inner"].depth == 2
        assert forest.depth_of("inner") == 2
        assert forest.depth_of("entry") == 0
        assert forest.inside_out()[0].header == "inner"

    def test_loops_sharing_a_header_are_merged(self):
        cfg = ControlFlowGraph.from_edges(
            "entry",
            {
                "entry": ["head"],
                "head": ["a", "exit"],
                "a": ["head", "b"],
                "b": ["head"],
                "exit": [],
            },
        )
        loops = natural_loops(cfg)
        assert set(loops) == {"head"}
        assert set(loops["head"].blocks) == {"head", "a", "b"}
        assert len(loops["head"].back_edges) == 2


# ---------------------------------------------------------------------------
# Preheader insertion
# ---------------------------------------------------------------------------


class TestPreheaders:
    def test_existing_jump_predecessor_is_reused(self):
        # fir_loop's entry ends in an unconditional jump to the header:
        # it already is a preheader, no new block is needed.
        program = kernel_program("fir_loop")
        blocks_before = [block.name for block in program.blocks]
        preheaders = insert_preheaders(program)
        assert [block.name for block in program.blocks] == blocks_before
        (header,) = preheaders
        assert preheaders[header] == "entry"

    def test_if_join_predecessor_is_reused_as_preheader(self):
        # The join block after an ``if`` ends in an unconditional jump to
        # the loop header: it already serves as the preheader.
        source = (
            "int a, z, i, j;\n"
            "z = 0;\n"
            "i = 0;\n"
            "if (a < 3) { z = 1; }\n"
            "while (i < 4) { z = z + a; i = i + 1; }\n"
        )
        program = lower_to_program(source, name="cond_entry")
        original = lower_to_program(source, name="cond_entry")
        forest = loop_nesting_forest(ControlFlowGraph.from_program(program))
        (header,) = forest.loops
        blocks_before = [block.name for block in program.blocks]
        preheaders = insert_preheaders(program, forest)
        assert [block.name for block in program.blocks] == blocks_before
        assert preheaders[header] == "L2_join"
        assert forest.loops[header].preheader == "L2_join"
        _assert_same_execution(original, program)

    def test_multiple_outside_predecessors_get_fresh_preheader(self):
        # Two blocks branch straight into the loop header: no reusable
        # landing pad exists, so a fresh ``.pre`` block is created and
        # both edges are redirected through it.
        def build():
            return Program(
                name="multi_pred",
                scalars=["p", "z", "i"],
                blocks=[
                    BasicBlock(
                        name="entry",
                        statements=[Statement("i", Const(0))],
                        terminator=CBranch(
                            Op("lt", (VarRef("p"), Const(2))), "left", "right"
                        ),
                    ),
                    BasicBlock(
                        name="left",
                        statements=[Statement("z", Const(1))],
                        terminator=Jump("head"),
                    ),
                    BasicBlock(
                        name="right",
                        statements=[Statement("z", Const(2))],
                        terminator=Jump("head"),
                    ),
                    BasicBlock(
                        name="head",
                        statements=[
                            Statement("z", Op("add", (VarRef("z"), Const(1)))),
                            Statement("i", Op("add", (VarRef("i"), Const(1)))),
                        ],
                        terminator=CBranch(
                            Op("lt", (VarRef("i"), Const(4))), "head", "exit"
                        ),
                    ),
                    BasicBlock(name="exit", statements=[], terminator=None),
                ],
            )

        program = build()
        original = build()
        forest = loop_nesting_forest(ControlFlowGraph.from_program(program))
        preheaders = insert_preheaders(program, forest)
        assert preheaders["head"] == "head.pre"
        cfg = ControlFlowGraph.from_program(program)
        assert set(cfg.predecessors["head.pre"]) == {"left", "right"}
        assert set(cfg.predecessors["head"]) == {"head.pre", "head"}
        _assert_same_execution(original, program)

    def test_entry_header_moves_program_entry(self):
        # A do-while at the very top: the header IS the entry block, so
        # the preheader must become the new program entry.
        loop = BasicBlock(
            name="top",
            statements=[
                Statement("i", Op("add", (VarRef("i"), Const(1)))),
            ],
            terminator=CBranch(
                Op("lt", (VarRef("i"), Const(4))), "top", "done"
            ),
        )
        done = BasicBlock(name="done", statements=[], terminator=None)
        program = Program(
            name="entry_header", blocks=[loop, done], scalars=["i"]
        )
        preheaders = insert_preheaders(program)
        assert program.entry_block_name() == preheaders["top"]
        assert program.block(preheaders["top"]).terminator == Jump("top")


# ---------------------------------------------------------------------------
# Rotation and strength reduction (the "loops" stage)
# ---------------------------------------------------------------------------


class TestRotation:
    def test_while_kernel_rotates_to_do_while(self):
        program = kernel_program("dot_product_loop")
        optimized, stats = optimize_program(program, stages=("loops",))
        assert stats.loops_rotated == 1
        names = [block.name for block in optimized.blocks]
        assert names == ["entry", "L2_body", "L3_endwhile"]
        latch = optimized.block("L2_body")
        assert isinstance(latch.terminator, CBranch)
        assert "L2_body" in latch.terminator.targets()
        _assert_same_execution(program, optimized)

    def test_do_while_kernel_needs_no_rotation(self):
        program = kernel_program("mac_dowhile")
        optimized, stats = optimize_program(program, stages=("loops",))
        assert stats.loops_rotated == 0
        _assert_same_execution(program, optimized)

    def test_zero_trip_loop_is_not_rotated(self):
        # Rotation moves the test to the bottom, which would execute the
        # body once -- only proven >= 1 trip loops may rotate.
        source = (
            "int z, i;\n"
            "z = 0;\n"
            "i = 5;\n"
            "while (i < 4) { z = z + 1; i = i + 1; }\n"
        )
        program = lower_to_program(source, name="zero_trip")
        optimized, stats = optimize_program(program, stages=("loops",))
        assert stats.loops_rotated == 0
        _assert_same_execution(program, optimized)

    def test_counted_loop_recognition_proves_trip_count(self):
        program = kernel_program("fir_loop")
        loops = find_counted_loops(program)
        (loop,) = loops.values()
        assert loop.induction == "i"
        assert loop.trip_count == 8
        assert loop.step == 1


class TestStrengthReduction:
    SOURCE = (
        "int z, y, i;\n"
        "z = 0;\n"
        "y = 0;\n"
        "i = 0;\n"
        "while (i < 5) { z = z + i * 3; y = y + i * 3; i = i + 1; }\n"
    )

    def test_induction_products_become_increments(self):
        program = lower_to_program(self.SOURCE, name="sr")
        optimized, stats = optimize_program(program, stages=("loops",))
        assert stats.strength_reductions >= 2
        assert any(name.startswith("__sr") for name in optimized.scalars)
        _assert_same_execution(program, optimized)

    def test_single_occurrence_is_left_alone(self):
        source = (
            "int z, i;\n"
            "z = 0;\n"
            "i = 0;\n"
            "while (i < 5) { z = z + i * 3; i = i + 1; }\n"
        )
        program = lower_to_program(source, name="sr_single")
        optimized, stats = optimize_program(program, stages=("loops",))
        assert stats.strength_reductions == 0
        assert not any(name.startswith("__sr") for name in optimized.scalars)


# ---------------------------------------------------------------------------
# LICM and cross-block GVN
# ---------------------------------------------------------------------------


class TestLICM:
    # LICM operates on rotated/do-while self-loops; ``k = a * b`` is an
    # invariant *statement* (single def, invariant reads) and moves
    # wholesale into the reused preheader.
    SOURCE = (
        "int a, b, k, z, i;\n"
        "z = 0;\n"
        "i = 0;\n"
        "do { k = a * b; z = z + k; i = i + 1; } while (i < 4);\n"
    )

    def test_invariant_statement_is_hoisted_out_of_the_loop(self):
        program = lower_to_program(self.SOURCE, name="licm")
        optimized, stats = optimize_program(program, stages=("licm",))
        assert stats.licm_hoisted >= 1
        forest = loop_nesting_forest(ControlFlowGraph.from_program(optimized))
        (loop,) = forest.loops.values()
        # The multiply left the loop body...
        body_text = " ".join(
            str(statement)
            for name in loop.blocks
            for statement in optimized.block(name).statements
        )
        assert "mul(a, b)" not in body_text
        # ...and lives in a block outside it.
        outside_text = " ".join(
            str(statement)
            for block in optimized.blocks
            if block.name not in loop.blocks
            for statement in block.statements
        )
        assert "mul(a, b)" in outside_text
        _assert_same_execution(program, optimized)

    def test_invariant_subexpression_is_materialized_once(self):
        source = (
            "int a, b, c, y, z, i;\n"
            "y = 0;\n"
            "z = 0;\n"
            "i = 0;\n"
            "do {\n"
            "  z = z + (a * b + c);\n"
            "  y = y - (a * b + c);\n"
            "  i = i + 1;\n"
            "} while (i < 4);\n"
        )
        program = lower_to_program(source, name="licm_subexpr")
        optimized, stats = optimize_program(program, stages=("licm",))
        assert stats.licm_hoisted >= 1
        assert any(name.startswith("__licm") for name in optimized.scalars)
        _assert_same_execution(program, optimized)

    def test_variant_expressions_stay_in_the_loop(self):
        # x[i] * h[i] varies with i: nothing to hoist even after rotation.
        program = kernel_program("fir_loop")
        optimized, stats = optimize_program(program, stages=("loops", "licm"))
        assert stats.licm_hoisted == 0
        _assert_same_execution(program, optimized)


class TestGlobalValueNumbering:
    def test_redundancy_across_dominated_blocks_is_removed(self):
        source = (
            "int a, b, p, y0, y1, y2;\n"
            "y0 = a * b + 7;\n"
            "if (p < 4) { y1 = a * b + 7; }\n"
            "y2 = a * b + 7;\n"
        )
        program = lower_to_program(source, name="gvn_cross")
        optimized, stats = optimize_program(program, stages=("gvn", "dce"))
        assert stats.gvn_hits >= 2
        _assert_same_execution(program, optimized)
        # The product is computed in exactly one (dominating) block.
        computing_blocks = [
            block.name
            for block in optimized.blocks
            if "mul(a, b)" in " ".join(str(s) for s in block.statements)
        ]
        assert computing_blocks == ["entry"]

    def test_sibling_branches_do_not_share(self):
        # Neither branch of an if/else dominates the other: GVN must not
        # reuse a value computed in only one of them afterwards.
        source = (
            "int a, b, p, y0, y1, y2;\n"
            "if (p < 4) { y0 = a * b + 7; } else { y1 = a * b + 7; }\n"
            "y2 = a * b + 7;\n"
        )
        program = lower_to_program(source, name="gvn_siblings")
        optimized, _stats = optimize_program(program, stages=("gvn", "dce"))
        _assert_same_execution(program, optimized)


# ---------------------------------------------------------------------------
# Hardware loops, end to end on the TMS320C25
# ---------------------------------------------------------------------------


class TestHardwareLoopsEndToEnd:
    def test_annotation_targets_single_block_self_loops(self):
        program = kernel_program("dot_product_loop")
        optimized, _stats = optimize_program(program)  # default stages
        annotations = annotate_hardware_loops(optimized)
        assert set(annotations) == {"L2_body"}
        loop = annotations["L2_body"]
        assert loop.trip_count == 4
        assert loop.kind == "repeat"

    @pytest.mark.parametrize("kernel", sorted(loop_kernel_names()))
    def test_every_loop_kernel_gains_a_hoist_or_hardware_loop(
        self, kernel, tms_result
    ):
        program = kernel_program(kernel)
        result = Session(tms_result).compile_program(program)
        metrics = result.metrics
        assert metrics.opt_licm_hoisted >= 1 or metrics.opt_hw_loops >= 1, (
            "%s: no LICM hoist and no hardware loop on tms320c25" % kernel
        )
        assert metrics.opt_hw_loops == len(result.program.hw_loops)

    @pytest.mark.parametrize("kernel", sorted(loop_kernel_names()))
    def test_rt_simulation_matches_reference_execution(self, kernel, tms_result):
        original = kernel_program(kernel)
        result = Session(tms_result).compile_program(kernel_program(kernel))
        for seed in SEEDS:
            environment = _environment(original, seed)
            reference = original.execute(dict(environment))
            simulated = _observable(result.simulate(dict(environment)))
            for name in original.all_variables():
                assert simulated[name] == reference[name], (kernel, seed, name)

    def test_repeat_lowering_reenters_fresh_on_outer_iterations(self, tms_result):
        # An inner counted loop nested in an outer loop: the repeat
        # counter must reset between outer iterations.
        source = (
            "int z, i, j;\n"
            "z = 0;\n"
            "j = 0;\n"
            "while (j < 3) {\n"
            "  i = 0;\n"
            "  do { z = z + 1; i = i + 1; } while (i < 4);\n"
            "  j = j + 1;\n"
            "}\n"
        )
        program = lower_to_program(source, name="nested")
        original = lower_to_program(source, name="nested")
        result = Session(tms_result).compile_program(program)
        for seed in SEEDS:
            environment = _environment(original, seed)
            reference = original.execute(dict(environment))
            simulated = _observable(result.simulate(dict(environment)))
            assert simulated["z"] == reference["z"] == 12


class TestPipelineObserver:
    def test_observer_sees_every_stage_in_order(self):
        program = kernel_program("fir_loop")
        seen = []
        OptPipeline().run(
            program, observer=lambda stage, prog: seen.append(stage)
        )
        assert tuple(seen) == OptPipeline.DEFAULT_STAGES

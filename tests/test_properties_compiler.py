"""Property-based tests of the compiler pipeline (hypothesis).

Random straight-line programs over a fixed set of variables are generated,
compiled for the TMS320C25-style target, and executed by the RT-level
simulator; the result must match the reference execution of the IR.  This
exercises code selection, chained-template semantics, scheduling, spilling
and the simulator together.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codegen.selection import CodeGenerationError
from repro.expansion.commutativity import swap_variants
from repro.ir.expr import evaluate_expr
from repro.ise import OpNode, RegLeaf
from repro.sim import simulate_statement_code

_VARIABLES = ["v0", "v1", "v2", "v3"]
# Operators that every built-in DSP-style target supports on memory operands.
_OPERATORS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def _expressions(draw, depth=0):
    # The top level is always an operator so that no statement degenerates to
    # a bare variable copy (those are covered at zero cost by design).
    if depth >= 3 or (depth > 0 and draw(st.booleans())):
        if draw(st.booleans()):
            return draw(st.sampled_from(_VARIABLES))
        return str(draw(st.integers(min_value=0, max_value=99)))
    operator = draw(st.sampled_from(_OPERATORS))
    left = draw(_expressions(depth=depth + 1))
    right = draw(_expressions(depth=depth + 1))
    return "(%s %s %s)" % (left, operator, right)


@st.composite
def _programs(draw):
    statement_count = draw(st.integers(min_value=1, max_value=4))
    lines = ["int %s;" % ", ".join(_VARIABLES)]
    for _ in range(statement_count):
        target = draw(st.sampled_from(_VARIABLES))
        lines.append("%s = %s;" % (target, draw(_expressions())))
    return "\n".join(lines)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=_programs(), seed=st.integers(min_value=0, max_value=2**16))
def test_generated_code_matches_reference_execution(tms_compiler, source, seed):
    try:
        compiled = tms_compiler.compile_source(source, name="random")
    except CodeGenerationError:
        pytest.skip("expression not coverable on this target")
    # Reference-execute the *original* lowered program, not the one the
    # backend selected: the default pipeline runs the IR optimizer first,
    # so this property also pins the optimizer's rewrites to the source
    # semantics on random programs.
    from repro.frontend.lowering import lower_to_program

    block = lower_to_program(source, name="random").single_block()
    import random

    rng = random.Random(seed)
    environment = {name: rng.randint(-100, 100) for name in _VARIABLES}
    reference = block.execute(environment)
    simulated = simulate_statement_code(list(compiled.statement_codes), environment)
    mask = 0xFFFF
    for key, value in reference.items():
        assert (value & mask) == (simulated.get(key, 0) & mask)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=_programs())
def test_code_size_at_least_one_instruction_per_statement(tms_result, source):
    # This property is about selection/compaction, so it runs the raw
    # pre-optimizer pipeline: the IR optimizer may legitimately fold a
    # statement like ``v0 = v1 + 0`` into a zero-instruction copy.
    from repro.toolchain import PipelineConfig, Session

    session = Session(tms_result, config=PipelineConfig(use_optimizer=False))
    try:
        compiled = session.compile(source, name="random")
    except CodeGenerationError:
        pytest.skip("expression not coverable on this target")
    # every statement of these programs computes something, so it needs at
    # least one instruction, and compaction can never drop below the number
    # of statements with non-trivial right-hand sides
    assert compiled.operation_count >= compiled.program.statement_count()
    assert compiled.code_size <= compiled.operation_count
    # The optimizer, when it does run, must never be worse on either axis.
    optimized = Session(tms_result).compile(source, name="random")
    assert optimized.code_size <= compiled.code_size
    assert optimized.operation_count <= compiled.operation_count


@settings(max_examples=30, deadline=None)
@given(
    operators=st.lists(st.sampled_from(["add", "mul", "and", "or", "xor", "sub"]), min_size=1, max_size=3)
)
def test_commutative_variants_preserve_evaluation(operators):
    """Swapping operands of commutative operators never changes the value."""
    pattern = RegLeaf("a")
    for index, operator in enumerate(operators):
        pattern = OpNode(operator, (pattern, RegLeaf("v%d" % index)))
    environment = {"a": 7, "v0": 3, "v1": -5, "v2": 11}

    def evaluate(node):
        from repro.ir.expr import Op, VarRef

        if isinstance(node, RegLeaf):
            return VarRef(node.storage)
        return Op(node.op, tuple(evaluate(child) for child in node.operands))

    reference = evaluate_expr(evaluate(pattern), environment)
    for variant in swap_variants(pattern):
        assert evaluate_expr(evaluate(variant), environment) == reference

"""Unit tests for the RECORD driver: retargeting, compiler, reports."""

import pytest

from repro.expansion import ExpansionOptions
from repro.record import (
    CompilerOptions,
    RecordCompiler,
    processor_class_report,
    retarget,
    retargeting_report,
)
from repro.record.report import format_processor_class_report
from repro.targets.library import target_hdl_source


class TestRetarget:
    def test_phases_are_timed(self, demo_result):
        timings = demo_result.timings.as_dict()
        assert set(timings) == {
            "hdl_frontend",
            "netlist",
            "extraction",
            "expansion",
            "grammar",
            "tables",
            "parser_generation",
            "total",
        }
        assert timings["total"] >= max(v for k, v in timings.items() if k != "total")
        assert all(value >= 0 for value in timings.values())

    def test_template_counts(self, demo_result):
        assert demo_result.raw_template_count > 0
        assert demo_result.template_count >= demo_result.raw_template_count
        assert demo_result.template_count == len(demo_result.template_base)

    def test_summary_fields(self, demo_result):
        summary = demo_result.summary()
        assert summary["processor"] == "demo"
        assert summary["extended_templates"] == demo_result.template_count
        assert summary["retargeting_time_s"] == pytest.approx(demo_result.timings.total)

    def test_grammar_is_valid_for_all_targets(self, retarget_results):
        for name, result in retarget_results.items():
            assert result.grammar.validate() == [], name

    def test_expansion_can_be_disabled(self):
        options = ExpansionOptions(use_commutativity=False, use_rewrite_rules=False)
        result = retarget(target_hdl_source("demo"), expansion=options, generate_matcher=False)
        assert result.template_count == result.raw_template_count
        assert result.matcher_module is None

    def test_retarget_is_deterministic(self):
        first = retarget(target_hdl_source("bass_boost"), generate_matcher=False)
        second = retarget(target_hdl_source("bass_boost"), generate_matcher=False)
        assert first.template_count == second.template_count
        assert {t.render() for t in first.template_base} == {
            t.render() for t in second.template_base
        }


class TestCompiler:
    def test_compile_source_end_to_end(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, c, d; d = c + a * b;")
        assert compiled.code_size == 4
        assert compiled.operation_count == 4
        assert compiled.spill_count == 0
        assert compiled.selection_cost == 4
        assert compiled.processor == "tms320c25"

    def test_listing_is_renderable(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, d; d = a + b;", name="tiny")
        listing = compiled.listing()
        assert "tiny" in listing and "tms320c25" in listing

    def test_binding_overrides_are_respected(self, tms_result):
        compiler = RecordCompiler(tms_result)
        compiled = compiler.compile_source(
            "int a, d; d = d + a;", binding_overrides={"a": "ACC"}
        )
        assert compiled.binding.storage_of("a") == "ACC"

    def test_options_disable_compaction(self, tms_result):
        with_compaction = RecordCompiler(tms_result, CompilerOptions(use_compaction=True))
        without = RecordCompiler(tms_result, CompilerOptions(use_compaction=False))
        source = "int a, b, c, d, e; d = c + a * b; e = c - a;"
        assert (
            with_compaction.compile_source(source).code_size
            <= without.compile_source(source).code_size
        )

    def test_no_chained_option_increases_cost(self, tms_result):
        full = RecordCompiler(tms_result)
        restricted = RecordCompiler(tms_result, CompilerOptions(allow_chained=False))
        source = "int a, b, c, d; d = c + a * b;"
        assert restricted.compile_source(source).code_size > full.compile_source(source).code_size

    def test_compiled_programs_share_statement_structure(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, c; b = a + 1; c = b + 2;")
        assert len(compiled.statement_codes) == 2
        assert compiled.program.statement_count() == 2


class TestReports:
    def test_retargeting_report_mentions_counts(self, demo_result):
        report = retargeting_report(demo_result)
        assert "demo" in report
        assert str(demo_result.template_count) in report
        assert "retargeting time" in report

    def test_processor_class_report_demo(self, demo_result):
        report = processor_class_report(demo_result)
        assert report["data type"] == "fixed-point"
        assert report["instruction format"] == "encoded"
        assert report["memory structure"] == "memory-register"
        assert report["register structure"] == "heterogeneous"
        assert report["mode registers"] == "no"

    def test_processor_class_report_tms(self, tms_result):
        report = processor_class_report(tms_result)
        assert report["register structure"] == "heterogeneous"
        assert "direct" in report["addressing modes"] or "computed" in report["addressing modes"]

    def test_formatted_report(self, demo_result):
        text = format_processor_class_report(demo_result)
        assert "Processor class features" in text
        assert "fixed-point" in text

"""End-to-end request-ID propagation tests.

One ``X-Request-Id`` supplied at the HTTP front end must be joinable
across every surface: the response headers, every NDJSON response line
of a batch (including timeout and injected-crash responses from the
process backend's workers), and the structured log records emitted by
the HTTP layer and by the worker processes.
"""

import json
import os
import urllib.request

import pytest

from repro.obs import log
from repro.server import start_server
from repro.service import ProcessCompileBackend


@pytest.fixture(scope="module")
def traffic(tmp_path_factory):
    """A process-backend server logging JSON records to a shared file.

    The env is set before the backend spawns so the worker processes
    inherit it and append their records to the same file.
    """
    log_path = tmp_path_factory.mktemp("logs") / "server.jsonl"
    os.environ["REPRO_LOG"] = "json"
    os.environ["REPRO_LOG_FILE"] = str(log_path)
    log.reset()
    backend = ProcessCompileBackend(
        workers=2,
        warm_targets=("demo",),
        test_hooks=True,
        request_timeout_s=30.0,
    )
    server = start_server(backend=backend, port=0)
    try:
        yield server, log_path
    finally:
        server.close()
        os.environ.pop("REPRO_LOG", None)
        os.environ.pop("REPRO_LOG_FILE", None)
        log.reset()


def _post(url, payload, headers=None, timeout=60.0):
    """(decoded JSON body, response headers) of one POST."""
    base = {"Content-Type": "application/json"}
    base.update(headers or {})
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), headers=base
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read()), response.headers


def _log_records(log_path):
    return [
        json.loads(line)
        for line in log_path.read_text().splitlines()
        if line.strip()
    ]


class TestSingleCompile:
    def test_inbound_header_is_echoed_everywhere(self, traffic):
        server, _log_path = traffic
        body, headers = _post(
            server.url + "/compile?results=0",
            {"target": "demo", "kernel": "fir"},
            headers={"X-Request-Id": "one-shot-42"},
        )
        assert headers["X-Request-Id"] == "one-shot-42"
        assert body["request_id"] == "one-shot-42"

    def test_missing_header_generates_an_id(self, traffic):
        server, _log_path = traffic
        body, headers = _post(
            server.url + "/compile?results=0", {"target": "demo", "kernel": "fir"}
        )
        generated = headers["X-Request-Id"]
        int(generated, 16)
        assert body["request_id"] == generated

    def test_job_level_id_wins_when_no_header(self, traffic):
        server, _log_path = traffic
        body, headers = _post(
            server.url + "/compile?results=0",
            {"target": "demo", "kernel": "fir", "request_id": "job-owned"},
        )
        assert body["request_id"] == "job-owned"
        assert headers["X-Request-Id"] == "job-owned"


class TestBatchOverProcessBackend:
    RID = "batch-rid-7"

    def test_every_response_line_and_log_record_carries_the_id(self, traffic):
        server, log_path = traffic
        jobs = [
            {"target": "demo", "kernel": "fir"},
            {"target": "demo", "kernel": "fir", "_test_exit": 9},
            {
                "target": "demo",
                "kernel": "fir",
                "timeout_s": 0.4,
                "_test_sleep_s": 30.0,
            },
            {"target": "demo"},  # malformed: neither source nor kernel
        ]
        request = urllib.request.Request(
            server.url + "/batch?results=0",
            data=json.dumps(jobs).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": self.RID,
            },
        )
        with urllib.request.urlopen(request, timeout=120) as reply:
            assert reply.headers["X-Request-Id"] == self.RID
            lines = [
                json.loads(line) for line in reply.read().splitlines() if line
            ]
        assert len(lines) == len(jobs)
        # every line -- success, crash, timeout, malformed -- is joinable
        assert [line["request_id"] for line in lines] == [self.RID] * len(jobs)
        assert [line["ok"] for line in lines] == [True, False, False, False]
        assert lines[1]["error"]["type"] == "WorkerCrashError"
        assert lines[2]["error"]["type"] == "RequestTimeoutError"

        records = _log_records(log_path)
        joined = [r for r in records if r.get("request_id") == self.RID]
        events = {r["event"] for r in joined}
        # the HTTP access log, the worker's compile record, and the
        # crash/timeout records all carry the same id
        assert "http_request" in events
        assert "compile" in events
        assert "worker_crash" in events
        assert "request_timeout" in events
        crash = next(r for r in joined if r["event"] == "worker_crash")
        assert crash["level"] == "error"
        assert isinstance(crash.get("pid"), int)

    def test_worker_boot_records_are_logged(self, traffic):
        _server, log_path = traffic
        records = _log_records(log_path)
        ready = [r for r in records if r["event"] == "worker_ready"]
        # two initial workers, plus respawns from the crash/timeout test
        assert len(ready) >= 2
        assert all(isinstance(r["pid"], int) for r in ready)


class TestWorkerStderrCapture:
    def test_crash_response_carries_the_worker_stderr_tail(self):
        backend = ProcessCompileBackend(
            workers=1,
            warm_targets=("demo",),
            test_hooks=True,
            request_timeout_s=30.0,
        )
        try:
            responses = backend.run_jobs(
                [
                    {
                        "target": "demo",
                        "kernel": "fir",
                        "request_id": "crash-1",
                        "_test_stderr": "panic: marker-9c1e",
                        "_test_exit": 3,
                    }
                ]
            )
        finally:
            backend.close()
        (response,) = responses
        assert not response["ok"]
        assert response["request_id"] == "crash-1"
        message = response["error"]["message"]
        assert "worker stderr" in message
        assert "panic: marker-9c1e" in message

    def test_stderr_capture_can_be_disabled(self):
        backend = ProcessCompileBackend(
            workers=1,
            warm_targets=("demo",),
            test_hooks=True,
            request_timeout_s=30.0,
            stderr_tail_lines=0,
        )
        try:
            responses = backend.run_jobs(
                [
                    {
                        "target": "demo",
                        "kernel": "fir",
                        "_test_stderr": "panic: marker-9c1e",
                        "_test_exit": 3,
                    }
                ]
            )
        finally:
            backend.close()
        (response,) = responses
        assert not response["ok"]
        assert "marker-9c1e" not in response["error"]["message"]

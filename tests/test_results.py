"""Tests for the structured CompilationResult artifact API."""

import json

import pytest

from repro.diagnostics import Diagnostic, ResultError
from repro.record.compiler import CompiledProgram
from repro.record.report import compilation_report
from repro.toolchain import (
    CompilationResult,
    CompileMetrics,
    PipelineConfig,
    Session,
    StatementArtifact,
)

SOURCE = "int a, b, c, d; d = c + a * b;"

#: A demo-machine source that forces spill insertion (one accumulator,
#: four live products).
SPILLY = (
    "int x0, x1, x2, x3, y; "
    "y = x0 * x1 + x1 * x2 + x2 * x3 + x3 * x0;"
)


@pytest.fixture(scope="module")
def tms_session(tms_result):
    return Session(tms_result)


@pytest.fixture(scope="module")
def result(tms_session):
    return tms_session.compile(SOURCE, name="mac")


class TestMetricsAndTimings:
    def test_metrics_block_matches_flat_properties(self, result):
        metrics = result.metrics
        assert isinstance(metrics, CompileMetrics)
        assert metrics.code_size == result.code_size
        assert metrics.operation_count == result.operation_count
        assert metrics.spill_count == result.spill_count
        assert metrics.selection_cost == result.selection_cost
        assert metrics.statement_count == len(result.statement_codes)

    def test_every_configured_pass_has_a_timing(self, tms_result):
        for preset in ("full", "conventional", "no-scheduling"):
            config = PipelineConfig.preset(preset)
            compiled = Session(tms_result, config=config).compile(SOURCE)
            assert list(compiled.pass_timings) == config.pass_names()
            assert all(t >= 0.0 for t in compiled.pass_timings.values())

    def test_encode_pass_is_timed_too(self, tms_result):
        config = PipelineConfig(encode=True)
        compiled = Session(tms_result, config=config).compile(SOURCE)
        assert "encode" in compiled.pass_timings
        assert compiled.encoding is not None

    def test_compile_time_is_sum_of_pass_timings(self, result):
        assert result.metrics.compile_time_s == pytest.approx(
            sum(result.pass_timings.values())
        )

    def test_config_is_recorded(self, result):
        assert result.config == PipelineConfig()


class TestViews:
    def test_listing_view(self, result):
        listing = result.listing()
        assert "mac" in listing and "tms320c25" in listing
        assert result.view("listing") == listing

    def test_statements_view(self, result):
        statements = result.statements()
        assert len(statements) == 1
        artifact = statements[0]
        assert isinstance(artifact, StatementArtifact)
        assert artifact.statement.startswith("d =")
        assert artifact.cost == result.selection_cost
        assert len(artifact.operations) == result.operation_count

    def test_metrics_and_timings_views(self, result):
        assert result.view("metrics") == result.metrics.to_dict()
        assert result.view("timings") == dict(result.pass_timings)

    def test_unknown_view_raises(self, result):
        with pytest.raises(ResultError):
            result.view("disassembly")

    def test_simulation_trace_view(self, result):
        trace = result.simulation_trace({"a": 2, "b": 5, "c": 1})
        assert len(trace.steps) == 1
        assert trace.final_environment["d"] == 11
        assert trace.steps[0].environment["d"] == 11
        assert trace.steps[0].operations  # the RT descriptions
        assert trace.to_dict()["final_environment"]["d"] == 11
        assert result.simulate({"a": 2, "b": 5, "c": 1})["d"] == 11


class TestSerialization:
    def test_to_json_round_trips_through_from_dict(self, result):
        data = json.loads(result.to_json())
        rebuilt = CompilationResult.from_dict(data)
        assert rebuilt.to_dict() == result.to_dict()
        # and a second generation is stable too
        assert CompilationResult.from_json(rebuilt.to_json()).to_dict() == data

    def test_round_trip_preserves_all_pass_timings(self, tms_result):
        config = PipelineConfig(encode=True)
        compiled = Session(tms_result, config=config).compile(SOURCE)
        rebuilt = CompilationResult.from_json(compiled.to_json())
        assert rebuilt.pass_timings == compiled.pass_timings
        assert list(rebuilt.pass_timings) == config.pass_names()

    def test_round_trip_preserves_views_and_diagnostics(self, demo_result):
        compiled = Session(demo_result).compile(SPILLY, name="spilly")
        assert compiled.spill_count > 0
        assert any(d.severity == "warning" for d in compiled.diagnostics)
        rebuilt = CompilationResult.from_json(compiled.to_json())
        assert rebuilt.listing() == compiled.listing()
        assert rebuilt.statements() == compiled.statements()
        assert rebuilt.diagnostics == compiled.diagnostics
        assert rebuilt.metrics == compiled.metrics
        assert rebuilt.config == compiled.config

    def test_detached_results_refuse_live_artifacts(self, result):
        detached = CompilationResult.from_dict(result.to_dict())
        assert detached.is_detached
        assert not result.is_detached
        with pytest.raises(ResultError):
            detached.instances
        with pytest.raises(ResultError):
            detached.simulation_trace({})

    def test_unsupported_schema_rejected(self, result):
        data = result.to_dict()
        data["schema"] = 999
        with pytest.raises(ResultError):
            CompilationResult.from_dict(data)

    def test_diagnostic_round_trip(self):
        diagnostic = Diagnostic(severity="warning", message="m", phase="spill")
        assert Diagnostic.from_dict(diagnostic.to_dict()) == diagnostic

    def test_pipeline_config_round_trip(self):
        config = PipelineConfig.preset("no-chained").with_updates(encode=True)
        assert PipelineConfig.from_dict(config.to_dict()) == config


class TestSpillDiagnostics:
    def test_spill_pass_emits_structured_warning(self, demo_result):
        compiled = Session(demo_result).compile(SPILLY)
        warnings = [d for d in compiled.diagnostics if d.phase == "spill"]
        assert len(warnings) == 1
        assert str(compiled.spill_count) in warnings[0].message

    def test_spill_free_compilation_has_no_spill_diagnostic(self, result):
        assert not [d for d in result.diagnostics if d.phase == "spill"]


class TestLegacyShim:
    def test_compiled_program_is_a_compilation_result(self, tms_compiler):
        compiled = tms_compiler.compile_source(SOURCE)
        assert isinstance(compiled, CompilationResult)

    def test_legacy_constructor_still_works(self, result):
        legacy = CompiledProgram(
            program=result.program,
            processor=result.processor,
            statement_codes=list(result.statement_codes),
            instances=result.instances,
            words=list(result.words),
            binding=result.binding,
        )
        assert legacy.code_size == result.code_size
        assert legacy.operation_count == result.operation_count
        assert legacy.spill_count == result.spill_count
        assert legacy.selection_cost == result.selection_cost
        assert legacy.listing() == result.listing()

    def test_shim_and_session_results_are_bit_identical(self, tms_result, tms_compiler):
        via_shim = tms_compiler.compile_source(SOURCE)
        via_session = Session(tms_result).compile(SOURCE)
        assert via_shim.code_size == via_session.code_size
        assert via_shim.operation_count == via_session.operation_count
        assert [i.describe() for i in via_shim.instances] == [
            i.describe() for i in via_session.instances
        ]
        assert via_shim.listing() == via_session.listing()


class TestReport:
    def test_compilation_report_renders(self, result):
        report = compilation_report(result)
        assert "mac" in report and "tms320c25" in report
        for pass_name in result.pass_timings:
            assert pass_name in report

    def test_compilation_report_works_on_detached_results(self, result):
        detached = CompilationResult.from_json(result.to_json())
        assert compilation_report(detached) == compilation_report(result)

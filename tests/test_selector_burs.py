"""Unit tests for the BURS code selector on a hand-written grammar."""

import pytest

from repro.grammar.grammar import PatNonterm, PatTerm, RuleKind, TreeGrammar
from repro.selector import CodeSelector, GrammarTables, SelectionError, SubjectNode


def _toy_grammar():
    """An accumulator machine grammar written by hand.

    Terminals: ASSIGN, MEM, ACC, add, mul, Const.
    Non-terminals: START, nt_MEM, nt_ACC.
    """
    grammar = TreeGrammar(processor="toy")
    grammar.terminals.update({"ASSIGN", "MEM", "ACC", "add", "mul", "Const"})
    grammar.nonterminals.update({"START", "nt_MEM", "nt_ACC"})
    # start rules
    grammar.add_rule(
        "START", PatTerm("ASSIGN", (PatTerm("MEM"), PatNonterm("nt_MEM"))), 0, RuleKind.START
    )
    grammar.add_rule(
        "START", PatTerm("ASSIGN", (PatTerm("ACC"), PatNonterm("nt_ACC"))), 0, RuleKind.START
    )
    # RT rules
    grammar.add_rule("nt_ACC", PatTerm("add", (PatNonterm("nt_ACC"), PatNonterm("nt_MEM"))), 1, RuleKind.RT)
    grammar.add_rule("nt_ACC", PatTerm("mul", (PatNonterm("nt_ACC"), PatNonterm("nt_MEM"))), 1, RuleKind.RT)
    # chained multiply-accumulate
    grammar.add_rule(
        "nt_ACC",
        PatTerm(
            "add",
            (PatNonterm("nt_ACC"), PatTerm("mul", (PatNonterm("nt_ACC"), PatNonterm("nt_MEM")))),
        ),
        1,
        RuleKind.RT,
    )
    grammar.add_rule("nt_ACC", PatNonterm("nt_MEM"), 1, RuleKind.RT)  # load
    grammar.add_rule("nt_MEM", PatNonterm("nt_ACC"), 1, RuleKind.RT)  # store
    grammar.add_rule("nt_ACC", PatTerm("Const"), 1, RuleKind.RT)  # load immediate
    grammar.add_rule("nt_ACC", PatTerm("Const", value=0), 0, RuleKind.RT)  # zero is free
    # stop rules
    grammar.add_rule("nt_MEM", PatTerm("MEM"), 0, RuleKind.STOP)
    grammar.add_rule("nt_ACC", PatTerm("ACC"), 0, RuleKind.STOP)
    return grammar


def _var(storage="MEM"):
    return SubjectNode(storage)


def _assign(dest_label, expr):
    return SubjectNode("ASSIGN", [SubjectNode(dest_label), expr])


@pytest.fixture()
def selector():
    return CodeSelector(_toy_grammar())


class TestLabelling:
    def test_leaf_states(self, selector):
        root = _var()
        states = selector.label(root)
        state = states[id(root)]
        assert state["nt_MEM"].cost == 0
        assert state["nt_ACC"].cost == 1  # via the load chain rule

    def test_chain_closure_costs(self, selector):
        root = SubjectNode("add", [_var(), _var()])
        states = selector.label(root)
        state = states[id(root)]
        # add(MEM, MEM): load one operand (1) + add (1) = 2 to reach nt_ACC.
        assert state["nt_ACC"].cost == 2
        # storing it back costs one more
        assert state["nt_MEM"].cost == 3

    def test_const_value_matching(self, selector):
        zero = SubjectNode("Const", const_value=0)
        other = SubjectNode("Const", const_value=5)
        assert selector.label(zero)[id(zero)]["nt_ACC"].cost == 0
        assert selector.label(other)[id(other)]["nt_ACC"].cost == 1


class TestSelection:
    def test_simple_assignment(self, selector):
        root = _assign("MEM", SubjectNode("add", [_var(), _var()]))
        result = selector.select(root)
        assert result.cost == 3
        kinds = [r.rule.kind for r in result.reductions]
        assert kinds.count(RuleKind.RT) == 3

    def test_chained_mac_is_preferred(self, selector):
        # acc_dest = MEM + MEM * MEM  -> load, MAC, store = 3 instead of 4
        expr = SubjectNode(
            "add", [_var(), SubjectNode("mul", [_var(), _var()])]
        )
        root = _assign("MEM", expr)
        result = selector.select(root)
        assert result.cost == 4  # load ACC, load ACC (mul operand), MAC, store
        chained_used = any(
            r.rule.kind == RuleKind.RT and "mul" in str(r.rule.pattern) and "add" in str(r.rule.pattern)
            for r in result.reductions
        )
        assert chained_used

    def test_reductions_are_children_first(self, selector):
        expr = SubjectNode("add", [_var(), _var()])
        root = _assign("MEM", expr)
        result = selector.select(root)
        # the final reduction must be the start rule at the root
        assert result.reductions[-1].rule.kind == RuleKind.START
        assert result.reductions[-1].node is root

    def test_select_with_explicit_goal(self, selector):
        expr = SubjectNode("add", [_var(), _var()])
        result = selector.select(expr, goal="nt_ACC")
        assert result.cost == 2

    def test_node_cost_helper(self, selector):
        expr = SubjectNode("mul", [_var(), _var()])
        assert selector.node_cost(expr, goal="nt_ACC") == 2
        assert selector.node_cost(expr) is None  # START needs an ASSIGN root

    def test_unmatchable_tree_raises(self, selector):
        root = _assign("MEM", SubjectNode("division", [_var(), _var()]))
        with pytest.raises(SelectionError):
            selector.select(root)

    def test_rt_reductions_filter(self, selector):
        root = _assign("MEM", SubjectNode("add", [_var(), _var()]))
        result = selector.select(root)
        assert len(result.rt_reductions()) == 3
        assert all(r.rule.kind == RuleKind.RT for r in result.rt_reductions())

    def test_rule_indices_are_consistent(self, selector):
        root = _assign("MEM", _var())
        result = selector.select(root)
        assert result.rule_indices() == [r.rule.index for r in result.reductions]


class TestTables:
    def test_tables_index_by_root_label(self):
        grammar = _toy_grammar()
        tables = GrammarTables.build(grammar)
        assert len(tables.candidate_rules("add")) == 2
        assert len(tables.candidate_rules("ASSIGN")) == 2
        assert tables.candidate_rules("unknown") == []

    def test_chain_candidates(self):
        grammar = _toy_grammar()
        tables = GrammarTables.build(grammar)
        assert {r.lhs for r in tables.chain_candidates("nt_MEM")} == {"nt_ACC"}
        assert {r.lhs for r in tables.chain_candidates("nt_ACC")} == {"nt_MEM"}

    def test_stats(self):
        tables = GrammarTables.build(_toy_grammar())
        stats = tables.stats()
        assert stats["chain_rules"] == 2
        assert stats["indexed_rules"] + stats["chain_rules"] == len(_toy_grammar().rules)


class TestSubjectNode:
    def test_post_order(self):
        a, b = _var(), _var()
        add = SubjectNode("add", [a, b])
        root = _assign("MEM", add)
        order = root.post_order()
        assert order[-1] is root
        assert order.index(a) < order.index(add)
        assert order.index(b) < order.index(add)

    def test_size_and_leaf(self):
        root = _assign("MEM", SubjectNode("add", [_var(), _var()]))
        assert root.size() == 5
        assert _var().is_leaf()
        assert not root.is_leaf()

    def test_repr(self):
        assert repr(SubjectNode("Const", const_value=3)) == "Const(3)"
        assert repr(_var()) == "MEM"
        assert "add" in repr(SubjectNode("add", [_var(), _var()]))

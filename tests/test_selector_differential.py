"""Differential and performance-semantics tests for the BURS matcher.

The table-driven matcher (linearized match programs, precomputed chain
closure, structural labelling memo) must produce exactly the covers of the
interpretive escape hatch (``matcher="interpretive"``) on every built-in
target and every DSPStone kernel -- identical costs *and* identical rule
index sequences.  On top of that, this module pins down the memoization
semantics (node_cost reuse, boundedness, cross-statement sharing) and the
explicit-stack walks (deep ~5k-node chain expressions compile without
``RecursionError``).
"""

import pickle

import pytest

from repro.codegen.selection import build_subject_tree
from repro.dspstone import all_kernel_names, kernel_program
from repro.ir.binding import BindingError, bind_program
from repro.ir.expr import Const, Op, VarRef
from repro.ir.program import BasicBlock, Program, Statement
from repro.selector import CodeSelector, SubjectNode
from repro.selector.burs import SelectionError
from repro.targets.library import all_target_names
from repro.toolchain import PipelineConfig, Session


@pytest.fixture(scope="module")
def interpretive_selectors(retarget_results):
    """One interpretive-matcher selector per target, sharing the tables."""
    return {
        name: CodeSelector(
            result.grammar, tables=result.selector.tables, matcher="interpretive"
        )
        for name, result in retarget_results.items()
    }


def _statement_subjects(target_result, kernel):
    """Subject trees for every statement of a kernel on one target, or
    None when the kernel's variables cannot be bound on that target."""
    program = kernel_program(kernel)
    try:
        binding = bind_program(program, target_result.netlist)
    except BindingError:
        return None
    subjects = []
    for block in program.blocks:
        for statement in block.statements:
            subjects.append(build_subject_tree(statement, binding))
    return subjects


class TestDifferentialCovers:
    @pytest.mark.parametrize("target", sorted(all_target_names()))
    def test_kernels_cover_identically_on_target(
        self, target, retarget_results, interpretive_selectors
    ):
        """Table-driven and interpretive matchers agree on cost and exact
        rule sequence for every DSPStone kernel statement (or both fail)."""
        result = retarget_results[target]
        table_selector = result.selector
        interp_selector = interpretive_selectors[target]
        compared = 0
        for kernel in all_kernel_names():
            subjects = _statement_subjects(result, kernel)
            if subjects is None:
                continue
            for subject in subjects:
                compared += 1
                try:
                    expected = interp_selector.select(subject)
                except SelectionError:
                    # Both matchers must agree that no cover exists.
                    with pytest.raises(SelectionError):
                        table_selector.select(subject)
                    continue
                got = table_selector.select(subject)
                assert got.cost == expected.cost
                assert got.rule_indices() == expected.rule_indices()
        assert compared > 0, "no kernel statement was comparable on %s" % target

    def test_memoized_relabelling_is_still_identical(self, tms_result):
        """A second pass over the same workload (memo fully warm) must not
        change any cover."""
        selector = CodeSelector(tms_result.grammar, tables=tms_result.selector.tables)
        subjects = _statement_subjects(tms_result, "fir")
        cold = [selector.select(s) for s in subjects]
        warm = [selector.select(s) for s in subjects]
        for before, after in zip(cold, warm):
            assert after.cost == before.cost
            assert after.rule_indices() == before.rule_indices()

    def test_unknown_matcher_is_rejected(self, demo_result):
        with pytest.raises(ValueError):
            CodeSelector(demo_result.grammar, matcher="quantum")


class TestLabellingMemo:
    def test_node_cost_reuses_cached_states(self, demo_result):
        selector = CodeSelector(demo_result.grammar, tables=demo_result.selector.tables)
        root = SubjectNode(
            "ASSIGN",
            [
                SubjectNode("DMEM"),
                SubjectNode("add", [SubjectNode("ACC"), SubjectNode("DMEM")]),
            ],
        )
        first = selector.node_cost(root)
        misses_after_first = selector.memo_misses
        assert misses_after_first > 0
        second = selector.node_cost(root)
        assert second == first
        # The second call recomputed nothing: every state came from the
        # per-node cache (same tree object), none were re-labelled.
        assert selector.memo_misses == misses_after_first
        assert selector.node_cache_hits >= 1
        # A structurally identical but fresh tree hits the structural memo.
        fresh = SubjectNode(
            "ASSIGN",
            [
                SubjectNode("DMEM"),
                SubjectNode("add", [SubjectNode("ACC"), SubjectNode("DMEM")]),
            ],
        )
        assert selector.node_cost(fresh) == first
        assert selector.memo_misses == misses_after_first
        assert selector.memo_hits >= 1
        assert selector.stats()["memo_hit_rate"] > 0.0

    def test_structurally_identical_trees_share_states(self, demo_result):
        """Distinct node objects with identical structure hit the memo even
        when their payloads differ."""
        selector = CodeSelector(demo_result.grammar, tables=demo_result.selector.tables)

        def make(payload):
            return SubjectNode(
                "ASSIGN",
                [
                    SubjectNode("DMEM", payload=payload),
                    SubjectNode("add", [SubjectNode("ACC"), SubjectNode("DMEM")]),
                ],
            )

        first = selector.select(make(("dest", "x")))
        hits_before = selector.memo_hits
        second = selector.select(make(("dest", "y")))
        assert selector.memo_hits > hits_before
        assert second.cost == first.cost
        assert second.rule_indices() == first.rule_indices()
        # Emission identity is preserved: reductions reference each tree's
        # own concrete nodes, not shared ones.
        assert second.reductions[-1].node is not first.reductions[-1].node

    def test_label_returns_states_for_every_node(self, demo_result):
        """The public label() contract: all nodes get a state, even when
        the memo is warm and subtrees repeat within one tree."""
        selector = CodeSelector(demo_result.grammar, tables=demo_result.selector.tables)

        def make():
            return SubjectNode(
                "ASSIGN",
                [
                    SubjectNode("DMEM"),
                    SubjectNode(
                        "add",
                        [
                            SubjectNode("mul", [SubjectNode("ACC"), SubjectNode("DMEM")]),
                            SubjectNode("mul", [SubjectNode("ACC"), SubjectNode("DMEM")]),
                        ],
                    ),
                ],
            )

        for _ in range(2):  # second pass runs against a fully warm memo
            root = make()
            states = selector.label(root)
            for node in root.post_order():
                assert id(node) in states
                assert states[id(node)], repr(node)

    def test_memo_disabled_reports_no_memo_traffic(self, demo_result):
        selector = CodeSelector(
            demo_result.grammar, tables=demo_result.selector.tables, memo_size=0
        )
        root = SubjectNode(
            "ASSIGN", [SubjectNode("DMEM"), SubjectNode("Const", const_value=9)]
        )
        selector.label(root)
        stats = selector.stats()
        assert stats["memo_hits"] == 0
        assert stats["memo_misses"] == 0
        assert stats["nodes_labelled"] == 3

    def test_memo_is_bounded(self, demo_result):
        selector = CodeSelector(
            demo_result.grammar, tables=demo_result.selector.tables, memo_size=4
        )
        for value in range(32):
            selector.node_cost(
                SubjectNode(
                    "ASSIGN",
                    [SubjectNode("DMEM"), SubjectNode("Const", const_value=value)],
                )
            )
        assert len(selector._memo) <= 4

    def test_memo_can_be_disabled(self, demo_result):
        selector = CodeSelector(
            demo_result.grammar, tables=demo_result.selector.tables, memo_size=0
        )
        root = SubjectNode(
            "ASSIGN", [SubjectNode("DMEM"), SubjectNode("Const", const_value=7)]
        )
        assert selector.node_cost(root) == selector.node_cost(root)
        assert selector.memo_hits == 0
        assert len(selector._memo) == 0

    def test_selector_pickles_without_memo(self, demo_result):
        selector = demo_result.selector
        root = SubjectNode(
            "ASSIGN", [SubjectNode("DMEM"), SubjectNode("Const", const_value=3)]
        )
        cost = selector.node_cost(root)
        clone = pickle.loads(pickle.dumps(selector))
        assert len(clone._memo) == 0
        assert clone.matcher == selector.matcher
        assert clone.node_cost(root) == cost

    def test_sessions_share_selector_tables(self, tms_result):
        """Sessions (and therefore pooled service workers) built on one
        retarget result share one read-only table object and one memo."""
        full = Session(tms_result)
        unscheduled = Session(
            tms_result, config=PipelineConfig(use_scheduling=False)
        )
        assert full.selector is unscheduled.selector
        assert full.selector.tables is tms_result.selector.tables


def _bellman_ford_chain_distances(source, grammar):
    """Independent oracle for the chain closure: shortest chain-rule
    distances from ``source``, computed by plain Bellman-Ford relaxation
    straight off ``grammar.rules`` (no GrammarTables machinery)."""
    distances = {source: 0}
    chain_rules = [rule for rule in grammar.rules if rule.is_chain()]
    for _ in range(len(grammar.nonterminals) + 1):
        changed = False
        for rule in chain_rules:
            origin = rule.pattern.name
            if origin not in distances:
                continue
            candidate = distances[origin] + rule.cost
            if rule.lhs not in distances or candidate < distances[rule.lhs]:
                distances[rule.lhs] = candidate
                changed = True
        if not changed:
            break
    return distances


def _fixpoint_label_costs(subject, grammar):
    """Independent oracle for node-state costs: the seed's interpretive
    algorithm (recursive pattern match + per-node chain fixpoint),
    reimplemented from the grammar alone.  Returns ``{nt: cost}`` per node
    id for every node of ``subject``."""
    from repro.grammar.grammar import PatNonterm, PatTerm

    def match(pattern, node, states):
        if isinstance(pattern, PatNonterm):
            cost = states[id(node)].get(pattern.name)
            return cost
        if node.label != pattern.name:
            return None
        if pattern.value is not None and node.const_value != pattern.value:
            return None
        if len(node.children) != len(pattern.operands):
            return None
        total = 0
        for child_pattern, child_node in zip(pattern.operands, node.children):
            child_cost = match(child_pattern, child_node, states)
            if child_cost is None:
                return None
            total += child_cost
        return total

    states = {}
    for node in subject.post_order():
        costs = {}
        for rule in grammar.rules:
            if rule.is_chain():
                continue
            leaf_cost = match(rule.pattern, node, states)
            if leaf_cost is None:
                continue
            total = rule.cost + leaf_cost
            if rule.lhs not in costs or total < costs[rule.lhs]:
                costs[rule.lhs] = total
        changed = True
        while changed:
            changed = False
            for rule in grammar.rules:
                if not rule.is_chain():
                    continue
                source_cost = costs.get(rule.pattern.name)
                if source_cost is None:
                    continue
                total = rule.cost + source_cost
                if rule.lhs not in costs or total < costs[rule.lhs]:
                    costs[rule.lhs] = total
                    changed = True
        states[id(node)] = costs
    return states


class TestClosureOracle:
    """The precomputed closure and the table-driven states checked against
    oracles that share no code with GrammarTables (guards against a bug in
    chain_closure_from fooling the backend-vs-backend differential)."""

    @pytest.mark.parametrize("target", sorted(all_target_names()))
    def test_closure_deltas_match_bellman_ford(self, target, retarget_results):
        result = retarget_results[target]
        tables = result.selector.tables
        sources = {rule.lhs for rule in result.grammar.rules}
        sources.update(tables.chain_rules_by_source)
        for source in sorted(sources):
            expected = _bellman_ford_chain_distances(source, result.grammar)
            expected.pop(source)
            got = {
                entry_target: delta
                for entry_target, delta, _rules in tables.closure_from(source)
            }
            assert got == expected, "closure mismatch from %s on %s" % (source, target)

    @pytest.mark.parametrize("target", sorted(all_target_names()))
    def test_closure_paths_are_wellformed(self, target, retarget_results):
        tables = retarget_results[target].selector.tables
        for source, entries in tables.chain_closure.items():
            for entry_target, delta, rule_path in entries:
                assert rule_path[0].pattern.name == source
                assert rule_path[-1].lhs == entry_target
                for previous, rule in zip(rule_path, rule_path[1:]):
                    assert rule.pattern.name == previous.lhs
                assert sum(rule.cost for rule in rule_path) == delta

    def test_node_state_costs_match_seed_fixpoint(self, retarget_results):
        """Every per-node, per-nonterminal cost of the table-driven
        labeller equals the seed algorithm's, on real kernel trees."""
        for target in ("demo", "tms320c25"):
            result = retarget_results[target]
            subjects = _statement_subjects(result, "fir") or []
            subjects += _statement_subjects(result, "complex_multiply") or []
            assert subjects
            for subject in subjects:
                expected = _fixpoint_label_costs(subject, result.grammar)
                states = result.selector.label(subject)
                for node in subject.post_order():
                    got = {nt: match.cost for nt, match in states[id(node)].items()}
                    assert got == expected[id(node)]


def _deep_chain_program(depth):
    """``acc = a + 1 + 1 + ... ;`` as a left-deep IR chain (~2*depth nodes)."""
    expression = VarRef("a")
    for _ in range(depth):
        expression = Op("add", (expression, Const(1)))
    return Program(
        name="deep_chain",
        blocks=[BasicBlock(name="entry", statements=[Statement("acc", expression)])],
        scalars=["a", "acc"],
    )


class TestDeepTrees:
    def test_deep_chain_selects_without_recursion_error(self, demo_result):
        """~5k-node chain: labelling, reduction and subject construction
        are explicit-stack walks and must not hit the recursion limit."""
        program = _deep_chain_program(2500)
        binding = bind_program(program, demo_result.netlist)
        statement = program.blocks[0].statements[0]
        subject = build_subject_tree(statement, binding)
        assert subject.size() >= 5000
        result = demo_result.selector.select(subject)
        assert result.cost > 0
        assert len(result.reductions) >= 2500

    def test_deep_chain_compiles_end_to_end(self, demo_result):
        """The full pipeline on a deep chain expression (the pre-table
        selector raised RecursionError in ``_reduce`` around depth 1000)."""
        program = _deep_chain_program(2500)
        session = Session(
            demo_result,
            config=PipelineConfig(use_scheduling=False, use_compaction=False),
        )
        compiled = session.compile_program(program)
        assert compiled.code_size >= 2500
        assert compiled.metrics.nodes_labelled > 0

    def test_interpretive_matcher_also_handles_deep_chains(self, demo_result):
        selector = CodeSelector(
            demo_result.grammar,
            tables=demo_result.selector.tables,
            matcher="interpretive",
        )
        program = _deep_chain_program(1500)
        binding = bind_program(program, demo_result.netlist)
        subject = build_subject_tree(program.blocks[0].statements[0], binding)
        assert selector.select(subject).cost > 0

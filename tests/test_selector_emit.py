"""Unit tests for the generated (emitted) matcher module."""

import pytest

from repro.selector import CodeSelector, SubjectNode, compile_matcher_module, emit_matcher_source


class TestEmittedMatcher:
    def test_source_is_valid_python(self, demo_result):
        source = emit_matcher_source(demo_result.grammar)
        compile(source, "<test>", "exec")
        assert "RULES" in source
        assert "def label(" in source

    def test_module_metadata(self, demo_result):
        module = compile_matcher_module(demo_result.grammar)
        assert module.PROCESSOR == "demo"
        assert module.START == demo_result.grammar.start
        assert len(module.RULES) == len(demo_result.grammar.rules)
        assert set(module.TERMINALS) == demo_result.grammar.terminals
        assert set(module.NONTERMINALS) == demo_result.grammar.nonterminals

    def test_generated_matcher_agrees_with_library_selector(self, demo_result):
        module = compile_matcher_module(demo_result.grammar)
        selector = CodeSelector(demo_result.grammar)
        # d := ACC + DMEM, with the destination in memory
        root = SubjectNode(
            "ASSIGN",
            [
                SubjectNode("DMEM"),
                SubjectNode("add", [SubjectNode("ACC"), SubjectNode("DMEM")]),
            ],
        )
        expected = selector.select(root)
        assert module.cover_cost(root) == expected.cost
        indices = module.reduce(root)
        assert indices == expected.rule_indices()

    def test_generated_matcher_reports_unmatchable_trees(self, demo_result):
        module = compile_matcher_module(demo_result.grammar)
        bad = SubjectNode("nonsense")
        assert module.cover_cost(bad) is None
        with pytest.raises(ValueError):
            module.reduce(bad)

    def test_matcher_module_is_retarget_output(self, demo_result):
        # retarget() stores the generated matcher so that users can inspect it
        assert demo_result.matcher_module is not None
        assert demo_result.matcher_module.PROCESSOR == "demo"

"""Unit tests for the offline-compiled matcher tables."""

import pickle

from repro.grammar.grammar import PatNonterm, PatTerm, RuleKind, TreeGrammar
from repro.selector import GrammarTables, StructurePool, chain_closure_from


def _toy_grammar():
    grammar = TreeGrammar(processor="toy")
    grammar.terminals.update({"ASSIGN", "MEM", "ACC", "add", "mul", "Const"})
    grammar.nonterminals.update({"START", "nt_MEM", "nt_ACC"})
    grammar.add_rule(
        "START", PatTerm("ASSIGN", (PatTerm("MEM"), PatNonterm("nt_MEM"))), 0, RuleKind.START
    )
    grammar.add_rule(
        "nt_ACC", PatTerm("add", (PatNonterm("nt_ACC"), PatNonterm("nt_MEM"))), 1, RuleKind.RT
    )
    grammar.add_rule(
        "nt_ACC",
        PatTerm(
            "add",
            (PatNonterm("nt_ACC"), PatTerm("mul", (PatNonterm("nt_ACC"), PatNonterm("nt_MEM")))),
        ),
        1,
        RuleKind.RT,
    )
    grammar.add_rule("nt_ACC", PatNonterm("nt_MEM"), 1, RuleKind.RT)  # load
    grammar.add_rule("nt_MEM", PatNonterm("nt_ACC"), 1, RuleKind.RT)  # store
    grammar.add_rule("nt_ACC", PatTerm("Const", value=0), 0, RuleKind.RT)
    grammar.add_rule("nt_MEM", PatTerm("MEM"), 0, RuleKind.STOP)
    return grammar


class TestInterning:
    def test_operator_ids_are_dense_and_in_rule_order(self):
        tables = GrammarTables.build(_toy_grammar())
        assert sorted(tables.op_ids.values()) == list(range(len(tables.op_ids)))
        # First-appearance order over rule patterns: ASSIGN, add, Const, MEM.
        assert tables.op_names == ["ASSIGN", "add", "Const", "MEM"]
        assert all(tables.op_names[i] == name for name, i in tables.op_ids.items())

    def test_nonterminal_ids_are_dense(self):
        tables = GrammarTables.build(_toy_grammar())
        assert sorted(tables.nt_ids.values()) == list(range(len(tables.nt_ids)))
        assert set(tables.nt_names) == {"START", "nt_MEM", "nt_ACC"}


class TestMatchPrograms:
    def test_programs_grouped_by_root_in_rule_order(self):
        tables = GrammarTables.build(_toy_grammar())
        add_programs = tables.programs_for("add")
        assert len(add_programs) == 2
        assert [p.rule.index for p in add_programs] == [1, 2]
        assert tables.programs_for("unknown") == ()

    def test_linearization_is_preorder_with_paths(self):
        tables = GrammarTables.build(_toy_grammar())
        # The chained rule: add(nt_ACC, mul(nt_ACC, nt_MEM))
        program = tables.programs_for("add")[1]
        kinds = [instr[0] for instr in program.code]
        assert kinds == [True, False, True, False, False]
        term_add, leaf_a, term_mul, leaf_b, leaf_c = program.code
        assert term_add[1] == "add" and term_add[3] == 2
        assert term_mul[1] == "mul" and term_mul[3] == 2
        assert (leaf_a[1], leaf_a[2]) == ("nt_ACC", (0,))
        assert (leaf_b[1], leaf_b[2]) == ("nt_ACC", (1, 0))
        assert (leaf_c[1], leaf_c[2]) == ("nt_MEM", (1, 1))
        assert program.leaf_count == 3

    def test_hardwired_constant_value_is_encoded(self):
        tables = GrammarTables.build(_toy_grammar())
        const_program = tables.programs_for("Const")[0]
        assert const_program.code[0] == (True, "Const", 0, 0)


class TestChainClosure:
    def test_closure_entries_and_deltas(self):
        tables = GrammarTables.build(_toy_grammar())
        acc_closure = dict(
            (target, (delta, rules)) for target, delta, rules in tables.closure_from("nt_ACC")
        )
        # nt_ACC -> nt_MEM via the store rule (cost 1).
        assert acc_closure["nt_MEM"][0] == 1
        assert [r.index for r in acc_closure["nt_MEM"][1]] == [4]
        mem_closure = dict(
            (target, (delta, rules)) for target, delta, rules in tables.closure_from("nt_MEM")
        )
        assert mem_closure["nt_ACC"][0] == 1

    def test_closure_excludes_trivial_self_entry(self):
        tables = GrammarTables.build(_toy_grammar())
        for source, entries in tables.chain_closure.items():
            assert all(target != source for target, _delta, _rules in entries)

    def test_multi_step_paths_are_transitive(self):
        grammar = TreeGrammar(processor="chainy")
        grammar.terminals.update({"X"})
        grammar.nonterminals.update({"a", "b", "c"})
        grammar.add_rule("a", PatTerm("X"), 0, RuleKind.RT)
        grammar.add_rule("b", PatNonterm("a"), 2, RuleKind.RT)
        grammar.add_rule("c", PatNonterm("b"), 3, RuleKind.RT)
        closure = dict(
            (target, (delta, [r.index for r in rules]))
            for target, delta, rules in chain_closure_from(
                "a", GrammarTables.build(grammar).chain_rules_by_source
            )
        )
        assert closure["b"] == (2, [1])
        assert closure["c"] == (5, [1, 2])

    def test_cost_ties_break_on_lowest_rule_index_path(self):
        grammar = TreeGrammar(processor="tie")
        grammar.terminals.update({"X"})
        grammar.nonterminals.update({"a", "b"})
        grammar.add_rule("a", PatTerm("X"), 0, RuleKind.RT)
        grammar.add_rule("b", PatNonterm("a"), 1, RuleKind.RT)  # index 1
        grammar.add_rule("b", PatNonterm("a"), 1, RuleKind.RT)  # index 2, same cost
        tables = GrammarTables.build(grammar)
        (entry,) = tables.closure_from("a")
        assert entry[0] == "b" and entry[1] == 1
        assert [r.index for r in entry[2]] == [1]


class TestBuildMetadata:
    def test_build_time_is_recorded(self):
        tables = GrammarTables.build(_toy_grammar())
        assert tables.build_time_s > 0.0

    def test_stats_cover_programs_and_closure(self):
        tables = GrammarTables.build(_toy_grammar())
        stats = tables.stats()
        assert stats["match_programs"] == stats["indexed_rules"] == 5
        assert stats["chain_rules"] == 2
        assert stats["closure_sources"] >= 2
        assert stats["program_instructions"] >= stats["match_programs"]

    def test_structure_pool_is_bounded_with_unique_tokens(self):
        pool = StructurePool(max_entries=2)
        a = pool.id_of(("A", None, ()))
        b = pool.id_of(("B", None, ()))
        c = pool.id_of(("C", None, ()))  # overflow: clears, next generation
        assert pool.generation == 1
        assert len(pool) == 1
        # Tokens are never reissued for a different structure, so equal
        # ids always mean equal structure (the memo invariant).
        assert len({a, b, c}) == 3
        a_again = pool.id_of(("A", None, ()))
        assert a_again not in (b, c)

    def test_tables_pickle_roundtrip(self):
        tables = GrammarTables.build(_toy_grammar())
        clone = pickle.loads(pickle.dumps(tables))
        assert clone.op_names == tables.op_names
        assert clone.stats() == tables.stats()
        assert [p.rule.index for p in clone.programs_for("add")] == [1, 2]

"""Tests for the compile server (repro.server + repro.service.backends).

The acceptance bar from ISSUE 7: malformed JSON, an unknown target, an
oversized body, a per-request timeout and a kill-injected worker crash
must each produce a structured error response -- the server never hangs
and never drops a request.
"""

import http.client
import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server import (
    AdmissionGate,
    Histogram,
    ServerMetrics,
    start_server,
)
from repro.service import (
    BackendError,
    CompileBackend,
    ProcessCompileBackend,
    ThreadCompileBackend,
    create_backend,
    default_process_workers,
)


def _post(url: str, payload, raw: bytes = None, timeout: float = 60.0) -> dict:
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _post_expecting_error(url: str, payload=None, raw: bytes = None) -> tuple:
    """(status_code, decoded_json_body, headers) of an HTTP error reply."""
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    error = excinfo.value
    return error.code, json.loads(error.read()), error.headers


# ---------------------------------------------------------------------------
# backend construction
# ---------------------------------------------------------------------------


class TestBackendConstruction:
    def test_default_process_workers_tracks_cpu_count(self):
        assert default_process_workers() == max(1, os.cpu_count() or 1)

    def test_create_backend_kinds(self):
        backend = create_backend("thread", workers=2)
        try:
            assert backend.kind == "thread"
            assert backend.workers == 2
        finally:
            backend.close()

    def test_create_backend_rejects_unknown_kind(self):
        with pytest.raises(BackendError) as excinfo:
            create_backend("fibers")
        assert "fibers" in str(excinfo.value)
        assert "thread" in str(excinfo.value)

    def test_thread_backend_runs_jobs_in_order(self):
        with ThreadCompileBackend(workers=2) as backend:
            responses = backend.run_jobs(
                [
                    {"target": "demo", "kernel": "fir", "request_id": "a"},
                    {"target": "demo", "source": "int a, b; b = a + 1;"},
                    {"target": "demo", "kernel": "nosuchkernel"},
                ]
            )
        assert [r["ok"] for r in responses] == [True, True, False]
        assert responses[0]["request_id"] == "a"
        # default names are positional, exactly like a batch
        assert responses[1]["name"] == "request1"
        stats = backend.stats()
        assert stats["completed"] == 2 and stats["failed"] == 1


# ---------------------------------------------------------------------------
# the process backend: isolation, crashes, timeouts
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def process_backend():
    """One shared single-worker process backend with fault-injection
    hooks armed (spawn cost amortized across the module)."""
    backend = ProcessCompileBackend(
        workers=1, warm_targets=("demo",), test_hooks=True, request_timeout_s=30.0
    )
    yield backend
    backend.close()


class TestProcessBackend:
    def test_compiles_and_matches_request_envelope(self, process_backend):
        response = process_backend.run_job(
            {"target": "demo", "kernel": "fir", "request_id": "p0"}
        )
        assert response["ok"], response.get("error")
        assert response["request_id"] == "p0"
        assert response["result"]["metrics"]["code_size"] > 0

    def test_unknown_target_is_a_structured_error(self, process_backend):
        response = process_backend.run_job({"target": "nosuchchip", "kernel": "fir"})
        assert not response["ok"]
        assert response["error"]["type"] == "TargetError"

    def test_malformed_job_is_a_structured_error(self, process_backend):
        response = process_backend.run_job({"target": "demo"})  # no source/kernel
        assert not response["ok"]
        assert response["error"]["type"] == "RequestError"

    def test_workers_share_the_prewarmed_cache(self, process_backend):
        process_backend.run_job({"target": "demo", "kernel": "fir"})
        stats = process_backend.stats()
        assert stats["pool_retargets"] == 0, (
            "worker re-retargeted instead of loading the shared v2 pickle"
        )
        assert stats["per_target"]["demo"]["completed"] >= 1

    def test_timeout_kills_and_respawns_the_worker(self, process_backend):
        before = process_backend.worker_pids()
        timeouts_before = process_backend.stats()["timeouts"]
        started = time.perf_counter()
        response = process_backend.run_job(
            {"target": "demo", "kernel": "fir", "timeout_s": 0.4,
             "_test_sleep_s": 30.0}
        )
        elapsed = time.perf_counter() - started
        assert not response["ok"]
        assert response["error"]["type"] == "RequestTimeoutError"
        assert response["error"]["phase"] == "server"
        assert elapsed < 20.0, "timeout did not preempt the stuck worker"
        stats = process_backend.stats()
        assert stats["timeouts"] == timeouts_before + 1
        assert stats["respawns"] >= 1
        after = process_backend.worker_pids()
        assert after and after != before, "stuck worker was not replaced"
        # the respawned worker serves the next request normally
        again = process_backend.run_job({"target": "demo", "kernel": "fir"})
        assert again["ok"], again.get("error")

    def test_injected_crash_is_detected_and_survived(self, process_backend):
        crashes_before = process_backend.stats()["crashes"]
        response = process_backend.run_job(
            {"target": "demo", "kernel": "fir", "_test_exit": 3}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "WorkerCrashError"
        assert "exit code 3" in response["error"]["message"]
        assert process_backend.stats()["crashes"] == crashes_before + 1
        again = process_backend.run_job({"target": "demo", "kernel": "fir"})
        assert again["ok"], again.get("error")

    def test_externally_killed_idle_worker_is_replaced(self, process_backend):
        victim = process_backend.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 10.0
        while time.time() < deadline:
            try:
                os.kill(victim, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        # the send fails on the dead pipe; the backend respawns and
        # retries once, so the caller still gets a real compile
        response = process_backend.run_job({"target": "demo", "kernel": "fir"})
        assert response["ok"], response.get("error")
        assert victim not in process_backend.worker_pids()

    def test_batch_preserves_positions_after_faults(self, process_backend):
        responses = process_backend.run_jobs(
            [
                {"target": "demo", "kernel": "fir"},
                {"target": "demo"},  # malformed
                {"target": "demo", "source": "int a, b; b = a + 3;"},
            ]
        )
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[2]["name"] == "request2"

    def test_closed_backend_refuses_jobs(self):
        backend = ProcessCompileBackend(workers=1, warm_targets=("demo",))
        backend.close()
        with pytest.raises(BackendError):
            backend.run_job({"target": "demo", "kernel": "fir"})


# ---------------------------------------------------------------------------
# the HTTP front end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    server = start_server(backend_kind="thread", workers=2, port=0)
    yield server
    server.close()


class TestHttpEndpoints:
    def test_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz", timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["backend"] == "thread"
        assert payload["queue_limit"] >= payload["workers"]

    def test_compile_ok(self, server):
        response = _post(
            server.url + "/compile",
            {"target": "demo", "kernel": "fir", "request_id": "h1"},
        )
        assert response["ok"]
        assert response["request_id"] == "h1"
        assert response["result"]["metrics"]["code_size"] > 0

    def test_compile_results_can_be_stripped(self, server):
        response = _post(
            server.url + "/compile?results=0", {"target": "demo", "kernel": "fir"}
        )
        assert response["ok"]
        assert "result" not in response

    def test_compile_error_is_http_200_with_error_envelope(self, server):
        response = _post(server.url + "/compile", {"target": "nosuchchip",
                                                   "kernel": "fir"})
        assert not response["ok"]
        assert response["error"]["type"] == "TargetError"

    def test_malformed_json_is_400(self, server):
        code, payload, _ = _post_expecting_error(
            server.url + "/compile", raw=b"{not json"
        )
        assert code == 400
        assert payload["error"]["type"] == "BadRequest"
        assert payload["error"]["phase"] == "server"

    def test_non_object_body_is_400(self, server):
        code, payload, _ = _post_expecting_error(server.url + "/compile", raw=b"[1, 2]")
        assert code == 400

    def test_missing_content_length_is_411(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.putrequest("POST", "/compile", skip_host=False)
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()  # no Content-Length, no body
            reply = connection.getresponse()
            payload = json.loads(reply.read())
        finally:
            connection.close()
        assert reply.status == 411
        assert payload["error"]["type"] == "LengthRequired"

    def test_unknown_endpoint_is_404(self, server):
        code, payload, _ = _post_expecting_error(
            server.url + "/transmogrify", {"target": "demo"}
        )
        assert code == 404

    def test_batch_streams_ndjson_in_order(self, server):
        jobs = [
            {"target": "demo", "kernel": "fir", "request_id": "b0"},
            {"target": "demo", "kernel": "nosuchkernel", "request_id": "b1"},
            {"target": "demo", "source": "int a, b; b = a + 2;", "request_id": "b2"},
        ]
        request = urllib.request.Request(
            server.url + "/batch?results=0",
            data=json.dumps(jobs).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as reply:
            assert reply.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in reply.read().splitlines() if line]
        assert [line["request_id"] for line in lines] == ["b0", "b1", "b2"]
        assert [line["ok"] for line in lines] == [True, False, True]

    def test_batch_accepts_jobs_object_and_ndjson_bodies(self, server):
        wrapped = {"jobs": [{"target": "demo", "kernel": "fir"}]}
        request = urllib.request.Request(
            server.url + "/batch?results=0",
            data=json.dumps(wrapped).encode("utf-8"),
        )
        with urllib.request.urlopen(request, timeout=60) as reply:
            lines = [json.loads(line) for line in reply.read().splitlines() if line]
        assert len(lines) == 1 and lines[0]["ok"]

        ndjson = (
            b'{"target": "demo", "kernel": "fir"}\n'
            b"this line is not json\n"
        )
        request = urllib.request.Request(
            server.url + "/batch?results=0", data=ndjson
        )
        with urllib.request.urlopen(request, timeout=60) as reply:
            lines = [json.loads(line) for line in reply.read().splitlines() if line]
        assert len(lines) == 2
        assert lines[0]["ok"]
        assert not lines[1]["ok"]
        assert lines[1]["error"]["type"] == "RequestError"
        assert "line 2" in lines[1]["error"]["message"]

    def test_empty_batch_is_400(self, server):
        code, payload, _ = _post_expecting_error(server.url + "/batch", raw=b"\n\n")
        assert code == 400

    def test_metrics_exposition(self, server):
        _post(server.url + "/compile", {"target": "demo", "kernel": "fir"})
        with urllib.request.urlopen(server.url + "/metrics", timeout=30) as reply:
            assert reply.headers["Content-Type"].startswith("text/plain")
            text = reply.read().decode()
        assert 'repro_compile_requests_total{status="ok",target="demo"}' in text
        assert 'repro_http_requests_total{code="200",endpoint="/compile"}' in text
        assert "repro_compiles_per_second" in text
        assert "repro_request_seconds_bucket" in text
        assert 'repro_phase_seconds_bucket{le="' in text
        assert "repro_label_memo_hit_rate" in text
        assert "repro_session_pool_hits_total" in text
        assert "repro_retarget_cache_misses_total" in text


# ---------------------------------------------------------------------------
# oversized bodies and backpressure (dedicated small-limit servers)
# ---------------------------------------------------------------------------


class _BlockingBackend(CompileBackend):
    """A stub backend whose jobs block on an event (saturation tests)."""

    kind = "stub"
    workers = 4

    def __init__(self):
        self.unblock = threading.Event()

    def run_job(self, job, index=0):
        self.unblock.wait(timeout=30.0)
        return {
            "target": job.get("target", ""),
            "name": job.get("name") or "request%d" % index,
            "ok": True,
            "elapsed_s": 0.0,
            "request_id": job.get("request_id"),
        }


class TestLimits:
    def test_oversized_body_is_413(self):
        server = start_server(backend_kind="thread", workers=1, port=0,
                              max_body_bytes=256)
        try:
            big = {"target": "demo", "source": "int a; " + "a = a + 1; " * 100}
            code, payload, _ = _post_expecting_error(server.url + "/compile", big)
            assert code == 413
            assert payload["error"]["type"] == "RequestBodyTooLarge"
            # a small request still fits afterwards
            ok = _post(server.url + "/compile?results=0",
                       {"target": "demo", "kernel": "fir"})
            assert ok["ok"]
        finally:
            server.close()

    def test_saturated_server_answers_429_with_retry_after(self):
        backend = _BlockingBackend()
        server = start_server(backend=backend, port=0, queue_limit=2)
        try:
            results = []

            def fire():
                results.append(
                    _post(server.url + "/compile", {"target": "demo", "kernel": "fir"})
                )

            threads = [threading.Thread(target=fire) for _ in range(2)]
            for thread in threads:
                thread.start()
            deadline = time.time() + 10.0
            while server.gate.in_flight < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert server.gate.in_flight == 2
            code, payload, headers = _post_expecting_error(
                server.url + "/compile", {"target": "demo", "kernel": "fir"}
            )
            assert code == 429
            assert payload["error"]["type"] == "ServerSaturated"
            assert headers.get("Retry-After") == "1"
            # a batch bigger than the whole budget is rejected outright
            code, payload, _ = _post_expecting_error(
                server.url + "/batch",
                [{"target": "demo", "kernel": "fir"}] * 3,
            )
            assert code == 429
            backend.unblock.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert [r["ok"] for r in results] == [True, True]
            assert server.gate.in_flight == 0
            with urllib.request.urlopen(server.url + "/metrics", timeout=30) as reply:
                text = reply.read().decode()
            assert "repro_http_rejected_total 2" in text
        finally:
            server.close(close_backend=False)


# ---------------------------------------------------------------------------
# the crash-proofing contract (ISSUE 8)
# ---------------------------------------------------------------------------


class _RaisingBackend(CompileBackend):
    """A stub backend whose run_job raises an unexpected exception."""

    kind = "stub"
    workers = 1

    def run_job(self, job, index=0):
        raise RuntimeError("backend exploded mid-job")


class TestCrashStorm:
    def test_crash_storm_is_structured_and_respawn_rate_is_bounded(self):
        # A worker that dies on every request: every caller still gets a
        # structured per-request error, the backoff throttles respawns
        # (no spawn livelock), and the counters surface in stats/metrics.
        backend = ProcessCompileBackend(
            workers=1,
            warm_targets=("demo",),
            test_hooks=True,
            request_timeout_s=30.0,
            respawn_backoff_s=0.02,
            respawn_backoff_max_s=0.1,
            respawn_backoff_after=2,
        )
        try:
            storm = [
                {"target": "demo", "kernel": "fir", "_test_exit": 9}
                for _ in range(6)
            ]
            responses = backend.run_jobs(storm)
            assert len(responses) == 6
            for response in responses:
                assert not response["ok"]
                assert response["error"]["type"] == "WorkerCrashError"
                assert response["error"]["phase"] == "server"
            stats = backend.stats()
            assert stats["crashes"] >= 6
            assert stats["respawns"] >= 6
            # streak 1..6 with backoff after 2 -> waits on streaks 3,4,5,6
            assert stats["backoff_waits"] == 4
            assert stats["consecutive_crashes"] == 6
            # the counters are exported as Prometheus gauges
            text = ServerMetrics(backend_stats=backend.stats).render()
            assert "repro_worker_backoff_waits_total 4" in text
            assert "repro_worker_consecutive_crashes 6" in text
            # one healthy request ends the storm and resets the streak
            recovered = backend.run_job({"target": "demo", "kernel": "fir"})
            assert recovered["ok"], recovered.get("error")
            assert backend.stats()["consecutive_crashes"] == 0
        finally:
            backend.close()


class TestInternalErrorBoundaries:
    def test_injected_pass_fault_is_a_structured_response(self, monkeypatch):
        # REPRO_INJECT_FAULT makes PassManager.run raise inside the
        # boundary; the service answers with a structured internal
        # diagnostic instead of crashing the batch.
        monkeypatch.setenv("REPRO_INJECT_FAULT", "select")
        with ThreadCompileBackend(workers=1) as backend:
            response = backend.run_job({"target": "demo", "kernel": "fir"})
        assert not response["ok"]
        assert response["error"]["type"] == "InternalCompilerError"
        assert response["error"]["phase"] == "internal"
        assert "select" in response["error"]["message"]

    def test_backend_exception_becomes_internal_error_envelope(self):
        server = start_server(backend=_RaisingBackend(), port=0)
        try:
            response = _post(
                server.url + "/compile", {"target": "demo", "kernel": "fir"}
            )
            assert not response["ok"]
            assert response["error"]["type"] == "InternalCompilerError"
            assert response["error"]["phase"] == "internal"
            assert "backend exploded" in response["error"]["message"]
        finally:
            server.close(close_backend=False)

    def test_handler_exception_is_a_structured_500(self):
        server = start_server(backend_kind="thread", workers=1, port=0)
        try:
            def broken_render():
                raise RuntimeError("metrics registry corrupted")

            server.metrics.render = broken_render
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/metrics", timeout=30)
            assert excinfo.value.code == 500
            payload = json.loads(excinfo.value.read())
            assert payload["error"]["type"] == "InternalCompilerError"
            assert payload["error"]["phase"] == "internal"
        finally:
            server.close()


# ---------------------------------------------------------------------------
# metrics units
# ---------------------------------------------------------------------------


class TestMetricsUnits:
    def test_admission_gate_is_all_or_nothing(self):
        gate = AdmissionGate(3)
        assert gate.try_acquire(2)
        assert not gate.try_acquire(2)  # only 1 slot free
        assert gate.try_acquire(1)
        assert gate.in_flight == 3
        gate.release(3)
        assert gate.in_flight == 0
        gate.release(5)  # floor at zero, never negative
        assert gate.in_flight == 0

    def test_histogram_cumulative_rendering(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        lines = hist.render("t")
        assert 't_bucket{le="0.01"} 1' in lines
        assert 't_bucket{le="0.1"} 2' in lines
        assert 't_bucket{le="1"} 3' in lines
        assert 't_bucket{le="+Inf"} 4' in lines
        assert "t_count 4" in lines
        total = [line for line in lines if line.startswith("t_sum")]
        assert total and abs(float(total[0].split()[1]) - 5.555) < 1e-9

    def test_server_metrics_aggregates_response_envelopes(self):
        metrics = ServerMetrics()
        metrics.record_compile(
            {
                "target": "demo",
                "ok": True,
                "elapsed_s": 0.02,
                "result": {
                    "pass_timings": {"select": 0.004, "schedule": 0.001},
                    "metrics": {"nodes_labelled": 100,
                                "label_memo_hit_rate": 0.25},
                },
            }
        )
        metrics.record_compile({"target": "demo", "ok": False, "elapsed_s": 0.001})
        metrics.record_http("/compile", 200)
        metrics.record_http("/compile", 429)
        snapshot = metrics.snapshot()
        assert snapshot["completed"] == 1
        assert snapshot["failed"] == 1
        assert snapshot["rejected"] == 1
        assert metrics.compiles_per_second() > 0
        text = metrics.render()
        assert 'repro_compile_requests_total{status="ok",target="demo"} 1' in text
        assert 'repro_compile_requests_total{status="error",target="demo"} 1' in text
        assert 'repro_phase_seconds_count{phase="select"} 1' in text
        assert "repro_label_memo_hit_rate 0.25" in text
        assert "repro_labelled_nodes_total 100" in text

    def test_backend_stats_become_gauges_at_render_time(self):
        stats = {
            "pool_hits": 9, "pool_misses": 1, "pool_retargets": 1,
            "pool_sessions": 2, "workers": 2, "crashes": 1,
            "respawns": 1, "timeouts": 0,
        }
        metrics = ServerMetrics(backend_stats=lambda: stats)
        text = metrics.render()
        assert "repro_session_pool_hits_total 9" in text
        assert "repro_retarget_cache_misses_total 1" in text
        assert "repro_worker_crashes_total 1" in text
        assert "repro_worker_respawns_total 1" in text
        assert "repro_request_timeouts_total 0" in text
        assert "repro_session_pool_hit_rate 0.9" in text

    def test_metrics_survive_a_broken_stats_callable(self):
        def broken():
            raise RuntimeError("backend went away")

        metrics = ServerMetrics(backend_stats=broken)
        assert "repro_uptime_seconds" in metrics.render()

    def test_compiles_per_second_decays_to_zero_after_traffic_stops(self):
        # Regression: the trailing-window rate must read exactly 0.0 at
        # scrape time once the window empties, not the last busy value.
        clock = [1000.0]
        metrics = ServerMetrics(rate_window_s=60.0, clock=lambda: clock[0])
        for _ in range(6):
            clock[0] += 1.0
            metrics.record_compile({"target": "demo", "ok": True, "elapsed_s": 0.01})
        busy = metrics.compiles_per_second()
        assert busy > 0.0
        clock[0] += 61.0  # one window past the last completion
        assert metrics.compiles_per_second() == 0.0
        assert "repro_compiles_per_second 0.0" in metrics.render()
        assert metrics.snapshot()["compiles_per_second"] == 0.0

    def test_per_worker_stats_render_as_labelled_gauges(self):
        stats = {
            "workers": 2,
            "per_worker": [
                {"worker": "g0", "pid": 11, "completed": 5, "failed": 1},
                {"worker": "g1", "pid": 12, "completed": 3, "failed": 0},
            ],
        }
        metrics = ServerMetrics(backend_stats=lambda: stats)
        text = metrics.render()
        assert 'repro_worker_requests_total{status="ok",worker="g0"} 5' in text
        assert 'repro_worker_requests_total{status="error",worker="g0"} 1' in text
        assert 'repro_worker_requests_total{status="ok",worker="g1"} 3' in text

    def test_target_phase_breakdown_accumulates(self):
        metrics = ServerMetrics()
        for _ in range(2):
            metrics.record_compile(
                {
                    "target": "tms320c25",
                    "ok": True,
                    "elapsed_s": 0.02,
                    "result": {"pass_timings": {"select": 0.25, "opt": 0.05}},
                }
            )
        text = metrics.render()
        assert (
            'repro_target_phase_seconds_total{phase="select",target="tms320c25"} 0.5'
            in text
        )
        assert 'repro_phase_seconds_count{phase="opt"} 2' in text

"""Tests for the concurrent compile service (repro.service)."""

import json

import pytest

from repro.service import (
    CompileRequest,
    CompileResponse,
    CompileService,
    SessionPool,
)
from repro.service.api import ErrorInfo, RequestError
from repro.toolchain import PipelineConfig


def _mixed_batch():
    """Nine requests over three distinct targets, one deliberately broken."""
    return [
        CompileRequest(target="demo", kernel="real_update", request_id="r0"),
        CompileRequest(target="tms320c25", kernel="fir", request_id="r1"),
        CompileRequest(
            target="demo",
            source="int a, b; b = a + 1;",
            name="inc",
            request_id="r2",
        ),
        CompileRequest(target="ref", kernel="dot_product", request_id="r3"),
        CompileRequest(
            target="tms320c25",
            source="int a, b, c, d; d = c + a * b;",
            request_id="r4",
        ),
        CompileRequest(
            target="demo", source="this is ; not a ! program", request_id="r5"
        ),
        CompileRequest(
            target="tms320c25",
            kernel="biquad_one",
            preset="no-chained",
            request_id="r6",
        ),
        CompileRequest(target="ref", source="int a, b; b = a * 7;", request_id="r7"),
        CompileRequest(target="demo", kernel="complex_multiply", request_id="r8"),
    ]


class TestRequests:
    def test_exactly_one_of_source_or_kernel(self):
        with pytest.raises(RequestError):
            CompileRequest(target="demo").validate()
        with pytest.raises(RequestError):
            CompileRequest(target="demo", source="x", kernel="fir").validate()

    def test_preset_and_config_are_exclusive(self):
        request = CompileRequest(
            target="demo", kernel="fir", preset="full", config=PipelineConfig()
        )
        with pytest.raises(RequestError):
            request.validate()

    def test_target_required(self):
        with pytest.raises(RequestError):
            CompileRequest(target="", kernel="fir").validate()

    def test_from_dict_round_trip(self):
        request = CompileRequest(
            target="tms320c25",
            kernel="fir",
            preset="no-chained",
            binding_overrides={"a": "ACC"},
            request_id="x1",
        )
        assert CompileRequest.from_dict(request.to_dict()) == request

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(RequestError):
            CompileRequest.from_dict({"target": "demo", "kernel": "fir", "bogus": 1})

    def test_resolved_config_resolves_presets(self):
        request = CompileRequest(target="demo", kernel="fir", preset="conventional")
        assert request.resolved_config() == PipelineConfig.preset("conventional")
        assert CompileRequest(
            target="demo", kernel="fir"
        ).resolved_config() == PipelineConfig()

    def test_opt_false_overrides_any_config(self):
        assert CompileRequest(
            target="demo", kernel="fir", opt=False
        ).resolved_config() == PipelineConfig(use_optimizer=False)
        assert CompileRequest(
            target="demo", kernel="fir", preset="no-scheduling", opt=False
        ).resolved_config() == PipelineConfig(
            use_scheduling=False, use_optimizer=False
        )
        assert CompileRequest(
            target="demo",
            kernel="fir",
            config=PipelineConfig(use_optimizer=False),
            opt=True,
        ).resolved_config() == PipelineConfig()

    def test_opt_field_round_trips(self):
        request = CompileRequest(target="demo", kernel="fir", opt=False)
        data = request.to_dict()
        assert data["opt"] is False
        assert CompileRequest.from_dict(data) == request
        # Omitted means "pipeline default" and is not serialized.
        assert "opt" not in CompileRequest(target="demo", kernel="fir").to_dict()

    def test_opt_field_must_be_boolean(self):
        with pytest.raises(RequestError):
            CompileRequest.from_dict(
                {"target": "demo", "kernel": "fir", "opt": "no"}
            )

    def test_timeout_field_round_trips(self):
        request = CompileRequest(target="demo", kernel="fir", timeout_s=2.5)
        data = request.to_dict()
        assert data["timeout_s"] == 2.5
        assert CompileRequest.from_dict(data) == request
        assert "timeout_s" not in CompileRequest(target="demo", kernel="fir").to_dict()

    def test_timeout_field_must_be_a_positive_number(self):
        for bad in ("soon", True, 0, -1.0):
            with pytest.raises(RequestError):
                CompileRequest(target="demo", kernel="fir", timeout_s=bad).validate()


class TestSessionPool:
    def test_sessions_are_reused_per_key(self):
        pool = SessionPool()
        first = pool.session("demo")
        second = pool.session("demo")
        assert first is second
        assert pool.stats()["sessions"] == 1
        assert pool.retarget_count == 1

    def test_distinct_configs_get_distinct_sessions(self):
        pool = SessionPool()
        full = pool.session("demo")
        restricted = pool.session("demo", PipelineConfig.preset("no-chained"))
        assert full is not restricted
        # but they share one retargeting run through the pool's cache
        assert pool.retarget_count == 1
        assert full.retarget_result is restricted.retarget_result

    def test_prewarm_builds_all_targets(self):
        pool = SessionPool()
        sessions = pool.prewarm(["demo", "ref"], concurrent=True)
        assert [s.processor for s in sessions] == ["demo", "ref"]
        assert pool.retarget_count == 2
        # prewarmed sessions are what later requests get
        assert pool.session("demo") is sessions[0]

    def test_concurrent_requests_build_one_session(self):
        from concurrent.futures import ThreadPoolExecutor

        pool = SessionPool()
        with ThreadPoolExecutor(max_workers=4) as executor:
            sessions = list(
                executor.map(lambda _i: pool.session("demo"), range(8))
            )
        assert all(s is sessions[0] for s in sessions)
        assert pool.retarget_count == 1
        assert pool.stats()["sessions"] == 1

    @pytest.mark.parametrize("attempt", range(5))
    def test_concurrent_configs_share_one_retarget(self, attempt):
        """Regression: two configs of the same target racing through a
        fresh pool must still retarget exactly once (the construction
        lock is per target, not per (target, config) key)."""
        from concurrent.futures import ThreadPoolExecutor

        pool = SessionPool()
        configs = [PipelineConfig(), PipelineConfig.preset("no-chained")] * 2
        with ThreadPoolExecutor(max_workers=4) as executor:
            sessions = list(
                executor.map(lambda c: pool.session("demo", c), configs)
            )
        assert pool.retarget_count == 1, attempt
        assert pool.stats()["sessions"] == 2
        assert sessions[0].retarget_result is sessions[1].retarget_result


class TestCompileService:
    def test_mixed_batch_acceptance(self):
        """The ISSUE-2 acceptance scenario: >= 8 mixed-target requests,
        one deliberately failing, all answered, sessions pooled."""
        requests = _mixed_batch()
        service = CompileService()
        responses = service.run_batch(requests)

        # one structured response per request, in input order
        assert len(responses) == len(requests)
        assert [r.request_id for r in responses] == [
            q.request_id for q in requests
        ]
        assert all(isinstance(r, CompileResponse) for r in responses)

        # the broken source failed structurally, everything else succeeded
        failures = [r for r in responses if not r.ok]
        assert [r.request_id for r in failures] == ["r5"]
        assert failures[0].error.type == "SourceSyntaxError"
        assert failures[0].error.phase == "frontend"
        for response in responses:
            if response.ok:
                assert response.result is not None
                assert response.result.pass_timings
                assert response.elapsed_s >= 0.0

        # pooling amortized retargeting: one retarget per distinct target
        distinct_targets = {q.target for q in requests}
        assert service.pool.retarget_count == len(distinct_targets)
        assert service.stats()["completed"] == len(requests) - 1
        assert service.stats()["failed"] == 1

    def test_opt_ab_requests_share_one_retarget(self):
        """The service-layer A/B knob: the same source with and without
        the optimizer, one retargeting run, never-worse optimized code."""
        source = (
            "int a, b, c, d, e, y0, y1;\n"
            "y0 = a * b + c * d + e;\n"
            "y1 = a * b + c * d - e;\n"
        )
        service = CompileService()
        responses = service.run_batch(
            [
                CompileRequest(
                    target="demo", source=source, name="ab", request_id="opt-on"
                ),
                CompileRequest(
                    target="demo",
                    source=source,
                    name="ab",
                    opt=False,
                    request_id="opt-off",
                ),
            ]
        )
        assert all(r.ok for r in responses)
        with_opt, without = responses
        assert with_opt.result.config.use_optimizer
        assert not without.result.config.use_optimizer
        assert with_opt.result.code_size <= without.result.code_size
        assert with_opt.result.metrics.opt_temps >= 1
        assert without.result.metrics.opt_temps == 0
        # Distinct configs, distinct pooled sessions, one retarget.
        assert service.pool.retarget_count == 1
        assert service.pool.stats()["sessions"] == 2

    def test_unknown_target_is_isolated(self):
        service = CompileService()
        responses = service.run_batch(
            [
                CompileRequest(target="nosuchchip", kernel="fir"),
                CompileRequest(target="demo", kernel="real_update"),
            ]
        )
        assert [r.ok for r in responses] == [False, True]
        assert responses[0].error.type == "TargetError"

    def test_unknown_kernel_is_isolated(self):
        service = CompileService()
        responses = service.run_batch(
            [CompileRequest(target="demo", kernel="nosuchkernel")]
        )
        assert not responses[0].ok
        assert "nosuchkernel" in responses[0].error.message

    def test_single_worker_path(self):
        service = CompileService()
        responses = service.run_batch(
            _mixed_batch()[:3], max_workers=1
        )
        assert [r.ok for r in responses] == [True, True, True]

    def test_empty_batch(self):
        assert CompileService().run_batch([]) == []

    def test_run_batch_dicts_isolates_malformed_jobs(self):
        service = CompileService()
        responses = service.run_batch_dicts(
            [
                {"target": "demo", "kernel": "real_update"},
                {"_malformed": "line 2: not json"},
                {"target": "demo", "source": "int a, b; b = a;", "name": "copy"},
            ]
        )
        assert [r.ok for r in responses] == [True, False, True]
        assert responses[1].error.type == "RequestError"
        assert "line 2" in responses[1].error.message
        assert responses[2].name == "copy"

    def test_run_batch_dicts_keeps_original_positions_for_default_names(self):
        """Regression: default names after a malformed line must reflect
        the original job position, not the filtered one."""
        service = CompileService()
        responses = service.run_batch_dicts(
            [
                {"_malformed": "line 1: not json"},
                {"target": "demo", "source": "int a, b; b = a;"},
            ]
        )
        assert [r.name for r in responses] == ["request0", "request1"]

    def test_response_serialization_round_trip(self):
        service = CompileService()
        response = service.run(CompileRequest(target="demo", kernel="fir"))
        assert response.ok
        data = json.loads(response.to_json())
        rebuilt = CompileResponse.from_dict(data)
        assert rebuilt.ok and rebuilt.result is not None
        assert rebuilt.result.to_dict() == response.result.to_dict()
        # status-only serialization drops the embedded result
        slim = response.to_dict(include_result=False)
        assert "result" not in slim and slim["ok"]

    def test_error_info_from_exception_captures_phase(self):
        from repro.diagnostics import PipelineError

        info = ErrorInfo.from_exception(PipelineError("bad preset"))
        assert info.type == "PipelineError"
        assert info.phase == "pipeline"
        assert ErrorInfo.from_dict(info.to_dict()) == info

    def test_shared_pool_across_batches(self):
        pool = SessionPool()
        service = CompileService(pool=pool)
        service.run_batch([CompileRequest(target="demo", kernel="fir")])
        service.run_batch([CompileRequest(target="demo", kernel="dot_product")])
        assert pool.retarget_count == 1

    def test_stats_breaks_counts_down_per_target(self):
        service = CompileService()
        service.run_batch(_mixed_batch())
        stats = service.stats()
        per_target = stats["per_target"]
        assert set(per_target) == {"demo", "ref", "tms320c25"}
        assert per_target["demo"]["failed"] == 1  # r5, the broken source
        assert sum(c["completed"] for c in per_target.values()) == stats["completed"]
        assert sum(c["failed"] for c in per_target.values()) == stats["failed"]

    def test_stats_returns_an_independent_snapshot(self):
        service = CompileService()
        service.run_batch([CompileRequest(target="demo", kernel="fir")])
        snapshot = service.stats()
        snapshot["completed"] = 999
        snapshot["per_target"]["demo"]["completed"] = 999
        fresh = service.stats()
        assert fresh["completed"] == 1
        assert fresh["per_target"]["demo"]["completed"] == 1
        # counters also stay readable directly
        assert service.completed == 1 and service.failed == 0


class TestBatchCli:
    def _write_jobs(self, tmp_path, jobs):
        path = tmp_path / "jobs.jsonl"
        path.write_text("\n".join(jobs) + "\n")
        return str(path)

    def test_batch_command_emits_one_response_per_job(self, tmp_path, capsys):
        from repro.cli import main

        jobs_path = self._write_jobs(
            tmp_path,
            [
                json.dumps({"target": "demo", "kernel": "real_update", "request_id": "a"}),
                "# a comment line",
                json.dumps({"target": "demo", "source": "int a, b; b = a + 1;", "name": "inc"}),
            ],
        )
        assert main(["batch", jobs_path, "--no-cache"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["ok"] and first["request_id"] == "a"
        assert first["result"]["metrics"]["code_size"] > 0

    def test_batch_command_honours_per_job_opt_field(self, tmp_path, capsys):
        """``"opt": false`` jobs run the pre-optimizer pipeline, so one
        batch can A/B the optimizer under load."""
        from repro.cli import main

        source = (
            "int a, b, c, d, e, y0, y1;"
            " y0 = a * b + c * d + e;"
            " y1 = a * b + c * d - e;"
        )
        jobs_path = self._write_jobs(
            tmp_path,
            [
                json.dumps(
                    {"target": "demo", "source": source, "request_id": "on"}
                ),
                json.dumps(
                    {
                        "target": "demo",
                        "source": source,
                        "opt": False,
                        "request_id": "off",
                    }
                ),
            ],
        )
        assert main(["batch", jobs_path, "--no-cache"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        responses = {json.loads(line)["request_id"]: json.loads(line) for line in lines}
        assert responses["on"]["ok"] and responses["off"]["ok"]
        assert responses["on"]["result"]["config"]["use_optimizer"] is True
        assert responses["off"]["result"]["config"]["use_optimizer"] is False
        assert (
            responses["on"]["result"]["metrics"]["code_size"]
            <= responses["off"]["result"]["metrics"]["code_size"]
        )
        assert responses["off"]["result"]["metrics"]["opt_temps"] == 0

    def test_batch_command_reports_failures_with_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        jobs_path = self._write_jobs(
            tmp_path,
            [
                json.dumps({"target": "demo", "kernel": "real_update"}),
                "{not json",
                json.dumps({"target": "demo", "source": "broken !!"}),
            ],
        )
        assert main(["batch", jobs_path, "--no-cache", "--no-results"]) == 1
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) == 3
        statuses = [json.loads(line)["ok"] for line in lines]
        assert statuses == [True, False, False]

    def test_batch_output_file(self, tmp_path, capsys):
        from repro.cli import main

        jobs_path = self._write_jobs(
            tmp_path, [json.dumps({"target": "demo", "kernel": "fir"})]
        )
        out_path = tmp_path / "responses.jsonl"
        assert main(["batch", jobs_path, "--no-cache", "-o", str(out_path)]) == 0
        lines = out_path.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["ok"]

    def test_compile_json_flag(self, capsys):
        from repro.cli import main

        assert main(["compile", "demo", "--kernel", "real_update", "--json", "--no-cache"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["processor"] == "demo"
        assert data["name"] == "real_update"
        assert set(data["pass_timings"]) == {"opt", "select", "schedule", "spill", "compact"}

    def test_compile_timings_flag(self, capsys):
        from repro.cli import main

        assert main(["compile", "demo", "--kernel", "real_update", "--timings", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "Compilation report" in output
        assert "select" in output

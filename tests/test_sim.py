"""Unit tests for the RT-level simulator."""

import random

import pytest

from repro.record.compiler import RecordCompiler
from repro.sim import (
    RTSimulator,
    SimulationError,
    SimulationTrace,
    simulate_statement_code,
    trace_execution,
)
from repro.sim.rtsim import reference_execution
from repro.codegen.selection import RTInstance
from repro.dspstone import kernel_program
from repro.frontend import lower_to_program


def _environment(block, seed=0):
    rng = random.Random(seed)
    return {name: rng.randint(-200, 200) for name in sorted(block.variables())}


def _agrees(reference, simulated):
    mask = 0xFFFF
    return all((reference[k] & mask) == (simulated.get(k, 0) & mask) for k in reference)


class TestSimulatorBasics:
    def test_simple_statement(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, d; d = a + b;")
        env = {"a": 3, "b": 4}
        result = simulate_statement_code(compiled.statement_codes, env)
        assert result["d"] == 7

    def test_chained_mac_semantics(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, c, d; d = c + a * b;")
        result = simulate_statement_code(compiled.statement_codes, {"a": 2, "b": 5, "c": 1})
        assert result["d"] == 11

    def test_negative_values_wrap_to_word_width(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, d; d = a - b;")
        result = simulate_statement_code(compiled.statement_codes, {"a": 1, "b": 2})
        assert result["d"] == 0xFFFF

    def test_sequence_of_statements(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, c; b = a + a; c = b * a;")
        result = simulate_statement_code(compiled.statement_codes, {"a": 3})
        assert result["b"] == 6
        assert result["c"] == 18

    def test_spill_instances_are_value_neutral(self):
        simulator = RTSimulator({"x": 1})
        spill = RTInstance(kind="spill_store", result_id="tmp:0", result_storage="DMEM")
        simulator._execute_instance(spill)
        assert simulator.environment == {"x": 1}

    def test_missing_node_raises(self):
        simulator = RTSimulator()
        broken = RTInstance(kind="rt", result_id="tmp:0", result_storage="ACC")
        with pytest.raises(SimulationError):
            simulator._execute_instance(broken)

    def test_undefined_value_raises(self):
        simulator = RTSimulator()
        with pytest.raises(SimulationError):
            simulator._lookup_value("tmp:99")

    def test_reference_execution_helper(self):
        program = lower_to_program("int a, b; b = a * 3;")
        env = reference_execution(program.single_block(), {"a": 4})
        assert env["b"] == 12


class TestKernelEquivalence:
    """Generated code must compute exactly what the source program computes."""

    @pytest.mark.parametrize(
        "kernel",
        [
            "real_update",
            "complex_multiply",
            "complex_update",
            "n_real_updates",
            "n_complex_updates",
            "fir",
            "biquad_one",
            "biquad_n",
            "dot_product",
            "convolution",
        ],
    )
    def test_kernel_on_tms320c25(self, tms_compiler, kernel):
        program = kernel_program(kernel)
        compiled = tms_compiler.compile_program(program)
        block = program.single_block()
        env = _environment(block, seed=hash(kernel) & 0xFFFF)
        assert _agrees(block.execute(env), simulate_statement_code(compiled.statement_codes, env))

    @pytest.mark.parametrize("kernel", ["real_update", "dot_product", "biquad_one"])
    def test_kernel_on_demo_machine(self, demo_compiler, kernel):
        program = kernel_program(kernel)
        compiled = demo_compiler.compile_program(program)
        block = program.single_block()
        env = _environment(block, seed=1)
        assert _agrees(block.execute(env), simulate_statement_code(compiled.statement_codes, env))

    def test_baseline_code_is_also_correct(self, tms_result):
        from repro.baselines import conventional_compiler

        baseline = conventional_compiler(tms_result)
        program = kernel_program("fir")
        compiled = baseline.compile_program(program)
        block = program.single_block()
        env = _environment(block, seed=7)
        assert _agrees(block.execute(env), simulate_statement_code(compiled.statement_codes, env))


class TestCrossTargetEquivalence:
    """End-to-end cross-target semantic check: the same kernel compiled
    for two different processors must simulate to identical environments
    (and both must match the IR reference execution)."""

    @pytest.mark.parametrize("kernel", ["real_update", "dot_product", "biquad_one"])
    def test_kernel_agrees_across_targets(self, tms_result, demo_result, kernel):
        from repro.toolchain import Session

        program = kernel_program(kernel)
        block = program.single_block()
        env = _environment(block, seed=0xC0DE)
        reference = block.execute(env)

        environments = {}
        for result in (tms_result, demo_result):
            compiled = Session(result).compile_program(program)
            environments[result.processor] = simulate_statement_code(
                compiled.statement_codes, env
            )
        on_tms = environments["tms320c25"]
        on_demo = environments["demo"]
        # both targets match the golden model ...
        assert _agrees(reference, on_tms)
        assert _agrees(reference, on_demo)
        # ... and (masked) agree with each other on every program variable
        mask = 0xFFFF
        for variable in sorted(block.variables()):
            assert (on_tms.get(variable, 0) & mask) == (
                on_demo.get(variable, 0) & mask
            ), variable

    def test_cross_target_traces_reach_same_final_environment(
        self, tms_result, demo_result
    ):
        from repro.toolchain import Session

        program = kernel_program("dot_product")
        env = _environment(program.single_block(), seed=3)
        traces = [
            Session(result).compile_program(program).simulation_trace(env)
            for result in (tms_result, demo_result)
        ]
        assert all(isinstance(trace, SimulationTrace) for trace in traces)
        # one step per statement, each step carrying the executed RTs
        statement_count = len(program.single_block())
        for trace in traces:
            assert len(trace) == statement_count
            assert all(step.operations for step in trace.steps)
        mask = 0xFFFF
        final_tms, final_demo = (trace.final_environment for trace in traces)
        for variable in sorted(program.single_block().variables()):
            assert (final_tms.get(variable, 0) & mask) == (
                final_demo.get(variable, 0) & mask
            )


class TestTraceHelpers:
    def test_trace_execution_records_statements_in_order(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, c; b = a + a; c = b * a;")
        trace = trace_execution(list(compiled.statement_codes), {"a": 3})
        assert [step.statement for step in trace.steps] == [
            "b = add(a, a)",
            "c = mul(b, a)",
        ]
        assert trace.steps[0].environment["b"] == 6
        assert trace.steps[1].environment["c"] == 18
        assert trace.initial_environment == {"a": 3}
        assert trace.final_environment["c"] == 18

    def test_trace_to_dict_is_json_ready(self, tms_compiler):
        import json

        compiled = tms_compiler.compile_source("int a, b; b = a + 1;")
        trace = trace_execution(list(compiled.statement_codes), {"a": 1})
        encoded = json.dumps(trace.to_dict())
        assert json.loads(encoded)["final_environment"]["b"] == 2

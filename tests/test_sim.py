"""Unit tests for the RT-level simulator."""

import random

import pytest

from repro.record.compiler import RecordCompiler
from repro.sim import RTSimulator, SimulationError, simulate_statement_code
from repro.sim.rtsim import reference_execution
from repro.codegen.selection import RTInstance
from repro.dspstone import kernel_program
from repro.frontend import lower_to_program


def _environment(block, seed=0):
    rng = random.Random(seed)
    return {name: rng.randint(-200, 200) for name in sorted(block.variables())}


def _agrees(reference, simulated):
    mask = 0xFFFF
    return all((reference[k] & mask) == (simulated.get(k, 0) & mask) for k in reference)


class TestSimulatorBasics:
    def test_simple_statement(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, d; d = a + b;")
        env = {"a": 3, "b": 4}
        result = simulate_statement_code(compiled.statement_codes, env)
        assert result["d"] == 7

    def test_chained_mac_semantics(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, c, d; d = c + a * b;")
        result = simulate_statement_code(compiled.statement_codes, {"a": 2, "b": 5, "c": 1})
        assert result["d"] == 11

    def test_negative_values_wrap_to_word_width(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, d; d = a - b;")
        result = simulate_statement_code(compiled.statement_codes, {"a": 1, "b": 2})
        assert result["d"] == 0xFFFF

    def test_sequence_of_statements(self, tms_compiler):
        compiled = tms_compiler.compile_source("int a, b, c; b = a + a; c = b * a;")
        result = simulate_statement_code(compiled.statement_codes, {"a": 3})
        assert result["b"] == 6
        assert result["c"] == 18

    def test_spill_instances_are_value_neutral(self):
        simulator = RTSimulator({"x": 1})
        spill = RTInstance(kind="spill_store", result_id="tmp:0", result_storage="DMEM")
        simulator._execute_instance(spill)
        assert simulator.environment == {"x": 1}

    def test_missing_node_raises(self):
        simulator = RTSimulator()
        broken = RTInstance(kind="rt", result_id="tmp:0", result_storage="ACC")
        with pytest.raises(SimulationError):
            simulator._execute_instance(broken)

    def test_undefined_value_raises(self):
        simulator = RTSimulator()
        with pytest.raises(SimulationError):
            simulator._lookup_value("tmp:99")

    def test_reference_execution_helper(self):
        program = lower_to_program("int a, b; b = a * 3;")
        env = reference_execution(program.single_block(), {"a": 4})
        assert env["b"] == 12


class TestKernelEquivalence:
    """Generated code must compute exactly what the source program computes."""

    @pytest.mark.parametrize(
        "kernel",
        [
            "real_update",
            "complex_multiply",
            "complex_update",
            "n_real_updates",
            "n_complex_updates",
            "fir",
            "biquad_one",
            "biquad_n",
            "dot_product",
            "convolution",
        ],
    )
    def test_kernel_on_tms320c25(self, tms_compiler, kernel):
        program = kernel_program(kernel)
        compiled = tms_compiler.compile_program(program)
        block = program.single_block()
        env = _environment(block, seed=hash(kernel) & 0xFFFF)
        assert _agrees(block.execute(env), simulate_statement_code(compiled.statement_codes, env))

    @pytest.mark.parametrize("kernel", ["real_update", "dot_product", "biquad_one"])
    def test_kernel_on_demo_machine(self, demo_compiler, kernel):
        program = kernel_program(kernel)
        compiled = demo_compiler.compile_program(program)
        block = program.single_block()
        env = _environment(block, seed=1)
        assert _agrees(block.execute(env), simulate_statement_code(compiled.statement_codes, env))

    def test_baseline_code_is_also_correct(self, tms_result):
        from repro.baselines import conventional_compiler

        baseline = conventional_compiler(tms_result)
        program = kernel_program("fir")
        compiled = baseline.compile_program(program)
        block = program.single_block()
        env = _environment(block, seed=7)
        assert _agrees(block.execute(env), simulate_statement_code(compiled.statement_codes, env))

"""Regression tests for the spill-reload clobber bug and the scheduler's
missing storage anti-dependence edges.

Both tests are built so they *fail on the pre-fix code*:

* the spill test replays the historical sequence in which a
  ``spill_reload`` overwrote a register still holding a live, never
  spilled temporary -- the storage-faithful RT simulator then computes a
  wrong (stale) result;
* the scheduler test replays a ready-list state in which the
  clobber-avoidance preference hoisted a register write over an earlier
  read of the same register (a register-resident input variable) -- on a
  target without spill memory nothing downstream repairs that.
"""

from repro.codegen.schedule import schedule_instances
from repro.codegen.selection import RTInstance, StatementCode
from repro.codegen.spill import count_spills, insert_spills
from repro.selector.subject import SubjectNode
from repro.sim.rtsim import RTSimulator


def _leaf(storage, payload):
    return SubjectNode(storage, payload=payload)


def _compute(op, result_id, result_storage, operand_specs):
    """An RT instance computing ``op`` over operand (id, storage, payload)
    triples; payloads make the instance simulatable."""
    operand_nodes = [
        _leaf(storage, payload) for _id, storage, payload in operand_specs
    ]
    node = SubjectNode(op, list(operand_nodes))
    return RTInstance(
        kind="rt",
        result_id=result_id,
        result_storage=result_storage,
        operands=[(vid, storage) for vid, storage, _p in operand_specs],
        node=node,
        operand_nodes=operand_nodes,
    )


class TestSpillReloadClobber:
    """A spill_reload must not silently overwrite a different live,
    never-spilled temporary (it must spill-store it first)."""

    def _sequence(self):
        # R is the single register; DMEM is the spill/variable memory.
        # t0 = a + 0        (into R)
        # t1 = b + 0        (into R -> spill pass stores t0 first)
        # t2 = t0 + c      (reload t0 into R -> clobbers live t1!)
        # out = t1 + t2     (t1 must still be 'b', not stale garbage)
        def var(name):
            return ("var", name)
        i0 = _compute("add", "tmp:0", "R", [("var:a", "DMEM", var("a")),
                                            ("const:0", "CONST", ("const", 0))])
        i1 = _compute("add", "tmp:1", "R", [("var:b", "DMEM", var("b")),
                                            ("const:0", "CONST", ("const", 0))])
        i2 = _compute("add", "tmp:2", "ACC", [("tmp:0", "R", None),
                                              ("var:c", "DMEM", var("c"))])
        i3 = _compute("add", "tmp:3", "ACC", [("tmp:1", "R", None),
                                              ("tmp:2", "ACC", None)])
        i3.defines_variable = "out"
        return [i0, i1, i2, i3]

    def test_reload_spills_live_occupant_first(self):
        spilled = insert_spills(self._sequence(), spill_storage="DMEM")
        kinds = [inst.kind for inst in spilled]
        # t0 spilled before t1 overwrites R, reloaded before its use --
        # and t1 spilled before that reload overwrites R again, then
        # reloaded before the final use.
        assert kinds.count("spill_store") == 2, kinds
        assert kinds.count("spill_reload") == 2, kinds
        reload_positions = [
            index for index, inst in enumerate(spilled)
            if inst.kind == "spill_reload"
        ]
        store_positions = [
            index for index, inst in enumerate(spilled)
            if inst.kind == "spill_store"
        ]
        # The occupant-preserving store of t1 precedes the reload of t0.
        assert store_positions[1] < reload_positions[0] or (
            spilled[store_positions[1]].result_id == "tmp:1"
        )

    def test_storage_faithful_simulation_is_correct(self):
        """The RTSimulator regression: in storage-faithful mode the
        pre-fix sequence computes a stale value for ``out``."""
        env = {"a": 11, "b": 23, "c": 40}
        spilled = insert_spills(self._sequence(), spill_storage="DMEM")
        code = StatementCode(statement=None, cost=0, instances=spilled)
        simulator = RTSimulator(dict(env), memory_storages={"DMEM", "CONST"})
        simulator.run_statement(code)
        # out = t1 + t2 = b + (a + c) = 23 + 51
        assert simulator.environment["out"] == 74

    def test_pre_fix_behavior_detected_by_faithful_simulator(self):
        """Replay the *pre-fix* output shape (reload without the occupant
        spill) and show the faithful simulator computes the stale result
        -- demonstrating the regression this PR fixes."""
        i0, i1, i2, i3 = self._sequence()
        store_t0 = RTInstance(
            kind="spill_store", result_id="tmp:0", result_storage="DMEM",
            operands=[("tmp:0", "R")],
        )
        reload_t0 = RTInstance(
            kind="spill_reload", result_id="tmp:0", result_storage="R",
            operands=[("tmp:0", "DMEM")],
        )
        # Pre-fix sequence: no spill of live t1 before the reload of t0.
        pre_fix = [i0, store_t0, i1, reload_t0, i2, i3]
        env = {"a": 11, "b": 23, "c": 40}
        simulator = RTSimulator(dict(env), memory_storages={"DMEM", "CONST"})
        simulator.run_statement(StatementCode(statement=None, cost=0, instances=pre_fix))
        # t1's read from R sees the reloaded t0 (11), not b (23):
        # out = 11 + 51 = 62 -- the observable wrong answer.
        assert simulator.environment["out"] == 62


class TestCountSpills:
    def test_counts_only_spill_kinds(self):
        instances = [
            RTInstance(kind="rt", result_id="tmp:0", result_storage="R"),
            RTInstance(kind="spill_store", result_id="tmp:0", result_storage="M"),
            RTInstance(kind="spill_reload", result_id="tmp:0", result_storage="R"),
            RTInstance(kind="jump", result_id="br:a", result_storage="@pc",
                       targets=("L1",)),
            RTInstance(kind="cbranch", result_id="br:b", result_storage="@pc",
                       targets=("L1", "L2")),
        ]
        assert count_spills(instances) == 2


class TestSchedulerAntiDependence:
    """A write to a storage resource must never be scheduled ahead of an
    earlier-in-program-order read of that resource (WAR)."""

    def _sequence(self):
        # Original order (valid):
        #   i0: t0 := x_acc_op ...   (writes ACC)
        #   i1: t1 := x + t0         (reads var x from R, reads ACC)
        #   i2: t2 := ...            (writes R -- after i1's read of R!)
        #   i3: out := t1 + t2
        def var(name):
            return ("var", name)
        i0 = _compute("add", "tmp:0", "ACC", [("var:a", "DMEM", var("a")),
                                              ("const:0", "CONST", ("const", 0))])
        i1 = _compute("add", "tmp:1", "ACC", [("var:x", "R", var("x")),
                                              ("tmp:0", "ACC", None)])
        i2 = _compute("add", "tmp:2", "R", [("var:b", "DMEM", var("b")),
                                            ("const:0", "CONST", ("const", 0))])
        i3 = _compute("add", "tmp:3", "ACC", [("tmp:1", "ACC", None),
                                              ("tmp:2", "R", None)])
        i3.defines_variable = "out"
        return [i0, i1, i2, i3]

    def test_write_not_hoisted_over_read(self):
        scheduled = schedule_instances(self._sequence())
        position = {inst.result_id: index for index, inst in enumerate(scheduled)}
        # Pre-fix, the clobber-avoidance preference picks the R-write
        # (tmp:2) before the R-read (tmp:1); the WAR edge forbids it.
        assert position["tmp:1"] < position["tmp:2"], [
            inst.result_id for inst in scheduled
        ]

    def test_memoryless_target_simulates_correctly(self):
        """End-to-end on a target without spill memory: schedule, then
        spill with ``spill_storage=None`` (a no-op), then simulate
        storage-faithfully."""
        env = {"a": 7, "x": 100, "b": 3}
        scheduled = schedule_instances(self._sequence())
        final = insert_spills(scheduled, spill_storage=None)
        simulator = RTSimulator(dict(env), memory_storages={"DMEM", "CONST"})
        simulator.run_statement(StatementCode(statement=None, cost=0, instances=final))
        # out = (x + a) + b = 107 + 3
        assert simulator.environment["out"] == 110

    def test_pre_fix_order_is_wrong_under_faithful_simulation(self):
        """The pre-fix schedule (R written before the read of x) makes
        the faithful simulator consume the clobbering value."""
        i0, i1, i2, i3 = self._sequence()
        pre_fix_order = [i0, i2, i1, i3]  # what the old scheduler chose
        env = {"a": 7, "x": 100, "b": 3}
        simulator = RTSimulator(dict(env), memory_storages={"DMEM", "CONST"})
        simulator.run_statement(
            StatementCode(statement=None, cost=0, instances=pre_fix_order)
        )
        # x's read from R sees tmp:2 (= b = 3): out = (3 + 7) + 3 = 13.
        assert simulator.environment["out"] == 13

"""Target/grammar lints (``repro lint-target``).

Synthetic grammars exercise each lint category in isolation; the
built-in smoke proves the severity calibration -- every shipped target
lints with zero errors, so a CI gate on errors is meaningful.
"""

from repro.analysis import lint_grammar, lint_target
from repro.analysis.lints import IR_OPERATORS
from repro.grammar.grammar import (
    ASSIGN_TERMINAL,
    CONST_TERMINAL,
    START_SYMBOL,
    PatNonterm,
    PatTerm,
    RuleKind,
    TreeGrammar,
)
from repro.targets.library import all_target_names


def _toy_grammar():
    """A minimal clean grammar: stores into MEM, adds, loads constants."""
    grammar = TreeGrammar(processor="toy")
    grammar.terminals.update({ASSIGN_TERMINAL, "MEM", "add", CONST_TERMINAL})
    grammar.nonterminals.update({START_SYMBOL, "nt_MEM"})
    grammar.add_rule(
        START_SYMBOL,
        PatTerm(ASSIGN_TERMINAL, (PatTerm("MEM"), PatNonterm("nt_MEM"))),
        0,
        RuleKind.START,
    )
    grammar.add_rule(
        "nt_MEM",
        PatTerm("add", (PatNonterm("nt_MEM"), PatNonterm("nt_MEM"))),
        1,
        RuleKind.RT,
    )
    grammar.add_rule("nt_MEM", PatTerm(CONST_TERMINAL), 0, RuleKind.RT)
    return grammar


def _by_check(findings):
    grouped = {}
    for finding in findings:
        grouped.setdefault(finding.check, []).append(finding)
    return grouped


class TestLintGrammar:
    def test_clean_grammar_has_no_findings(self):
        assert lint_grammar(_toy_grammar()) == []

    def test_unreachable_rule_is_a_warning(self):
        grammar = _toy_grammar()
        grammar.nonterminals.add("nt_dead")
        grammar.add_rule("nt_dead", PatTerm(CONST_TERMINAL), 1, RuleKind.RT)
        grouped = _by_check(lint_grammar(grammar))
        assert len(grouped["unreachable-rule"]) == 1
        finding = grouped["unreachable-rule"][0]
        assert finding.severity == "warning"
        assert "nt_dead" in finding.where

    def test_shadowed_rule_is_a_warning(self):
        grammar = _toy_grammar()
        # Same lhs, same pattern, higher cost: the matcher's first-rule
        # tie-break makes this rule dead.
        grammar.add_rule(
            "nt_MEM",
            PatTerm("add", (PatNonterm("nt_MEM"), PatNonterm("nt_MEM"))),
            3,
            RuleKind.RT,
        )
        grouped = _by_check(lint_grammar(grammar))
        assert len(grouped["shadowed-rule"]) == 1
        finding = grouped["shadowed-rule"][0]
        assert finding.severity == "warning"
        assert "first matching rule always wins" in finding.message

    def test_cheaper_duplicate_is_not_shadowed(self):
        grammar = _toy_grammar()
        # A *cheaper* duplicate beats the earlier rule on cost, so it is
        # live (the earlier one keeps winning ties only at equal cost).
        grammar.add_rule(
            "nt_MEM",
            PatTerm("add", (PatNonterm("nt_MEM"), PatNonterm("nt_MEM"))),
            0,
            RuleKind.RT,
        )
        grouped = _by_check(lint_grammar(grammar))
        assert "shadowed-rule" not in grouped

    def test_zero_cost_chain_cycle_is_an_error(self):
        grammar = _toy_grammar()
        grammar.nonterminals.add("nt_R")
        grammar.add_rule("nt_MEM", PatNonterm("nt_R"), 0, RuleKind.RT)
        grammar.add_rule("nt_R", PatNonterm("nt_MEM"), 0, RuleKind.RT)
        grouped = _by_check(lint_grammar(grammar))
        assert len(grouped["chain-cycle"]) == 1
        finding = grouped["chain-cycle"][0]
        assert finding.severity == "error"
        assert "->" in finding.message

    def test_costed_chain_loop_is_not_a_cycle_finding(self):
        grammar = _toy_grammar()
        grammar.nonterminals.add("nt_R")
        # Moving through nt_R costs one instruction in one direction:
        # legal modelling of a register-register move pair.
        grammar.add_rule("nt_MEM", PatNonterm("nt_R"), 1, RuleKind.RT)
        grammar.add_rule("nt_R", PatNonterm("nt_MEM"), 0, RuleKind.RT)
        grouped = _by_check(lint_grammar(grammar))
        assert "chain-cycle" not in grouped

    def test_inert_operator_is_a_note(self):
        grammar = _toy_grammar()
        grammar.terminals.add("bitrev")
        grammar.add_rule(
            "nt_MEM",
            PatTerm("bitrev", (PatNonterm("nt_MEM"),)),
            1,
            RuleKind.RT,
        )
        grouped = _by_check(lint_grammar(grammar))
        assert len(grouped["inert-operator"]) == 1
        finding = grouped["inert-operator"][0]
        assert finding.severity == "note"
        assert "'bitrev'" in finding.message

    def test_producible_operator_override(self):
        grammar = _toy_grammar()
        grammar.terminals.add("bitrev")
        grammar.add_rule(
            "nt_MEM",
            PatTerm("bitrev", (PatNonterm("nt_MEM"),)),
            1,
            RuleKind.RT,
        )
        findings = lint_grammar(
            grammar, producible_operators=set(IR_OPERATORS) | {"bitrev"}
        )
        assert "inert-operator" not in _by_check(findings)

    def test_structural_problems_surface_as_grammar_errors(self):
        grammar = _toy_grammar()
        grammar.add_rule("nt_unknown", PatTerm(CONST_TERMINAL), 1, RuleKind.RT)
        grouped = _by_check(lint_grammar(grammar))
        assert any(f.severity == "error" for f in grouped["grammar"])


class TestBuiltinTargetsLintClean:
    def test_every_builtin_target_has_zero_errors(self, retarget_results):
        for name in all_target_names():
            findings = lint_target(retarget_results[name])
            errors = [f for f in findings if f.severity == "error"]
            assert errors == [], (name, [f.describe() for f in errors])

    def test_lint_target_cross_checks_matcher_tables(self, demo_result):
        findings = lint_target(demo_result)
        # The demo target's tables index every rule.
        assert not any(f.check == "tables" for f in findings)

    def test_cli_lint_target_reports_clean(self, capsys):
        from repro.cli import main

        for name in all_target_names():
            assert main(["lint-target", name]) == 0, name
        out = capsys.readouterr().out
        assert out

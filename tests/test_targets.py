"""Tests of the built-in processor models and the target library."""

import pytest

from repro.hdl import ModuleKind, parse_processor
from repro.netlist import build_netlist
from repro.targets import all_target_names, get_target, load_target_netlist, target_hdl_source
from repro.targets.library import TABLE3_ORDER


class TestLibrary:
    def test_all_six_targets_present(self):
        assert all_target_names() == TABLE3_ORDER
        assert len(all_target_names()) == 6

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            get_target("pdp11")
        with pytest.raises(KeyError):
            target_hdl_source("pdp11")

    def test_specs_have_descriptions(self):
        for name in all_target_names():
            spec = get_target(name)
            assert spec.name == name
            assert spec.description
            assert spec.category

    def test_hdl_sources_parse(self):
        for name in all_target_names():
            model = parse_processor(target_hdl_source(name))
            assert model.name == name

    def test_netlists_build(self):
        for name in all_target_names():
            netlist = load_target_netlist(name)
            assert netlist.name == name
            assert netlist.control_source_modules(), name


class TestModelStructure:
    def test_every_target_has_one_instruction_memory(self):
        for name in all_target_names():
            netlist = load_target_netlist(name)
            instruction_memories = [
                m
                for m in netlist.modules.values()
                if m.kind == ModuleKind.INSTRUCTION_MEMORY
            ]
            assert len(instruction_memories) == 1, name

    def test_every_target_has_a_data_memory_except_none(self):
        for name in all_target_names():
            netlist = load_target_netlist(name)
            memories = [m for m in netlist.modules.values() if m.kind == ModuleKind.MEMORY]
            assert memories, name

    def test_tms_register_set(self):
        netlist = load_target_netlist("tms320c25")
        registers = {m.name for m in netlist.modules.values() if m.kind == ModuleKind.REGISTER}
        assert {"ACC", "TREG", "PREG", "AR"} <= registers

    def test_ref_register_file(self):
        netlist = load_target_netlist("ref")
        registers = {m.name for m in netlist.modules.values() if m.kind == ModuleKind.REGISTER}
        assert {"R0", "R1", "R2", "R3", "AR"} <= registers

    def test_all_inputs_of_datapath_modules_are_driven(self):
        # every combinational module input should be connected; an undriven
        # input would silently remove routes
        for name in all_target_names():
            netlist = load_target_netlist(name)
            for module in netlist.combinational_modules():
                for port in module.input_ports():
                    assert netlist.driver_of_input(module.name, port.name) is not None, (
                        name,
                        str(port),
                    )


class TestExtractionExpectations:
    """Per-target expectations about the extracted instruction set (the
    qualitative shape of table 3)."""

    def test_template_count_ordering(self, retarget_results):
        counts = {name: result.template_count for name, result in retarget_results.items()}
        # ref is by far the largest template base, bass_boost the smallest
        assert counts["ref"] == max(counts.values())
        assert counts["bass_boost"] == min(counts.values())
        assert counts["tms320c25"] > counts["bass_boost"]

    def test_all_targets_have_a_store_template(self, retarget_results):
        for name, result in retarget_results.items():
            destinations = result.template_base.destinations()
            memories = {
                m.name
                for m in result.netlist.modules.values()
                if m.kind == ModuleKind.MEMORY and m.memory_writes()
            }
            assert memories & destinations, name

    def test_mac_machines_expose_chained_templates(self, retarget_results):
        for name in ("ref", "bass_boost", "tms320c25"):
            chained = retarget_results[name].template_base.chained_templates()
            assert chained, name

    def test_accumulator_machines_have_add_templates(self, retarget_results):
        for name, result in retarget_results.items():
            assert "add" in result.template_base.operators(), name

    def test_demo_specific_templates(self, retarget_results):
        rendered = {t.render() for t in retarget_results["demo"].extraction.template_base}
        assert "ACC := add(ACC, DMEM)" in rendered
        assert "ACC := mul(ACC, DMEM)" in rendered
        assert "BREG := DMEM" in rendered
        assert "DMEM := ACC [direct]" in rendered

    def test_tms_specific_templates(self, retarget_results):
        rendered = {t.render() for t in retarget_results["tms320c25"].extraction.template_base}
        assert "ACC := add(ACC, mul(TREG, DMEM))" in rendered
        assert "PREG := mul(TREG, DMEM)" in rendered
        assert "TREG := DMEM" in rendered
        assert "ACC := PREG" in rendered

    def test_bass_boost_specific_templates(self, retarget_results):
        rendered = {t.render() for t in retarget_results["bass_boost"].extraction.template_base}
        assert "ACC := add(ACC, mul(XREG, CROM))" in rendered
        assert "XREG := DMEM" in rendered
        assert "XREG := SAMPLE_IN" in rendered

    def test_manocpu_specific_templates(self, retarget_results):
        rendered = {t.render() for t in retarget_results["manocpu"].extraction.template_base}
        assert "AC := add(AC, DMEM)" in rendered
        assert "AC := and(AC, DMEM)" in rendered
        assert "AC := not(AC)" in rendered
        assert "AC := #0" in rendered

    def test_tanenbaum_specific_templates(self, retarget_results):
        rendered = {t.render() for t in retarget_results["tanenbaum"].extraction.template_base}
        assert "AC := add(AC, DMEM)" in rendered
        assert "SP := add(SP, #1)" in rendered
        assert "SP := sub(SP, #1)" in rendered

"""Tests for the repro.toolchain subsystem: registry, passes, cache,
session API, and the structured diagnostics layer."""

import pickle

import pytest

from repro.diagnostics import (
    PipelineError,
    ReproError,
    SourceLocation,
    TargetError,
    error_report,
)
from repro.dspstone import all_kernel_names, get_kernel, kernel_program
from repro.frontend import LoweringError, SourceSyntaxError
from repro.hdl.errors import HdlParseError
from repro.record.compiler import CompilerOptions, RecordCompiler, restricted_selector
from repro.targets import all_target_names, target_hdl_source
from repro.toolchain import (
    PRESETS,
    Pass,
    PassManager,
    PipelineConfig,
    RetargetCache,
    Session,
    TargetRegistry,
    TargetSpec,
    Toolchain,
    retarget_fingerprint,
)


# ---------------------------------------------------------------------------
# Target registry
# ---------------------------------------------------------------------------


class TestTargetRegistry:
    def test_default_registry_has_builtins(self):
        toolchain = Toolchain()
        assert set(all_target_names()) <= set(toolchain.registry.names())
        spec = toolchain.registry.get("tms320c25")
        assert spec.origin == "builtin"
        assert spec.hdl_source == target_hdl_source("tms320c25")

    def test_register_hdl_and_lookup(self):
        registry = TargetRegistry()
        registry.register_hdl("mychip", "processor mychip; ...", category="custom")
        assert "mychip" in registry
        assert registry.get("mychip").category == "custom"
        assert registry.names() == ["mychip"]

    def test_duplicate_registration_rejected(self):
        registry = TargetRegistry()
        registry.register_hdl("chip", "hdl-a")
        with pytest.raises(TargetError):
            registry.register_hdl("chip", "hdl-b")
        registry.register_hdl("chip", "hdl-b", replace=True)
        assert registry.get("chip").hdl_source == "hdl-b"

    def test_unknown_target_raises_target_error(self):
        registry = TargetRegistry()
        with pytest.raises(TargetError):
            registry.get("z80")
        # Backwards compatibility: TargetError is a KeyError.
        with pytest.raises(KeyError):
            registry.get("z80")

    def test_decorator_registration(self):
        registry = TargetRegistry()

        @registry.target("quirk", category="custom", description="a quirky ASIP")
        def _quirk():
            return "processor quirk; ..."

        spec = registry.get("quirk")
        assert spec.hdl_source == "processor quirk; ..."
        assert spec.description == "a quirky ASIP"

    def test_register_file_and_resolve_path(self, tmp_path):
        hdl_file = tmp_path / "machine.hdl"
        hdl_file.write_text(target_hdl_source("demo"))
        registry = TargetRegistry()
        spec = registry.register_file(str(hdl_file))
        assert spec.name == "machine"
        assert spec.origin == "file"
        # resolve() accepts paths without registering them
        ephemeral = registry.resolve(str(hdl_file))
        assert ephemeral.hdl_source == target_hdl_source("demo")
        with pytest.raises(TargetError):
            registry.resolve("no-such-target-or-file")

    def test_registry_mapping_protocol(self):
        registry = TargetRegistry()
        registry.register(TargetSpec(name="a", hdl_source="x"))
        registry.register(TargetSpec(name="b", hdl_source="y"))
        assert len(registry) == 2
        assert list(registry) == ["a", "b"]
        assert registry["a"].hdl_source == "x"


# ---------------------------------------------------------------------------
# Pass pipeline
# ---------------------------------------------------------------------------


class TestPipeline:
    def test_default_pass_order(self):
        manager = PassManager.from_config(PipelineConfig())
        assert manager.names() == ["opt", "select", "schedule", "spill", "compact"]

    def test_no_opt_preset_drops_optimizer(self):
        manager = PassManager.from_config(PipelineConfig.preset("no-opt"))
        assert manager.names() == ["select", "schedule", "spill", "compact"]

    def test_config_pass_names_match_manager(self):
        for config in PRESETS.values():
            assert PassManager.from_config(config).names() == config.pass_names()

    def test_encode_pass_appended(self):
        manager = PassManager.from_config(PipelineConfig(encode=True))
        assert manager.names()[-1] == "encode"

    def test_no_scheduling_preset_drops_pass(self):
        manager = PassManager.from_config(PipelineConfig.preset("no-scheduling"))
        assert "schedule" not in manager.names()
        assert "select" in manager.names() and "spill" in manager.names()

    def test_conventional_preset_matches_baseline_options(self):
        from repro.baselines import conventional_options

        assert PipelineConfig.preset("conventional") == PipelineConfig.from_options(
            conventional_options()
        )

    def test_unknown_preset_raises(self):
        with pytest.raises(PipelineError):
            PipelineConfig.preset("turbo")

    def test_options_roundtrip(self):
        options = CompilerOptions(allow_chained=False, use_compaction=False)
        config = PipelineConfig.from_options(options)
        assert config.to_options() == options

    def test_pipeline_editing(self):
        manager = PassManager.from_config(PipelineConfig())

        class MarkerPass(Pass):
            name = "marker"

            def run(self, state, context):
                pass

        manager.insert_after("select", MarkerPass())
        assert manager.names()[manager.names().index("select") + 1] == "marker"
        manager.remove("marker")
        assert "marker" not in manager.names()
        with pytest.raises(PipelineError):
            manager.remove("marker")

    def test_custom_pass_runs(self, demo_result):
        observed = []

        class CountPass(Pass):
            name = "count"

            def run(self, state, context):
                observed.append(len(state.all_instances()))

        session = Session(demo_result)
        session.pass_manager.insert_after("spill", CountPass())
        session.compile("int a, b, d; d = a + b;")
        assert observed and observed[0] > 0

    def test_encode_pass_produces_encoding(self, demo_result):
        session = Session(demo_result, config=PipelineConfig(encode=True))
        compiled = session.compile("int a, b, d; d = a + b;")
        assert compiled.encoding is not None
        assert "IM" in compiled.encoding


# ---------------------------------------------------------------------------
# Session facade
# ---------------------------------------------------------------------------


class TestSession:
    def test_for_target_compiles(self):
        session = Toolchain.for_target("demo", use_cache=False)
        compiled = session.compile("int a, b, d; d = a + b;")
        assert compiled.processor == "demo"
        assert compiled.code_size > 0

    def test_compile_many_equivalent_to_sequential_legacy(self, tms_result):
        kernels = [get_kernel(name).source for name in all_kernel_names()]
        session = Session(tms_result)
        batch = session.compile_many(kernels, names=all_kernel_names())
        legacy = RecordCompiler(tms_result)
        for name, compiled in zip(all_kernel_names(), batch):
            reference = legacy.compile_source(get_kernel(name).source, name=name)
            assert compiled.code_size == reference.code_size, name
            assert compiled.spill_count == reference.spill_count, name
            assert compiled.operation_count == reference.operation_count, name

    def test_compile_many_name_mismatch_rejected(self, demo_result):
        session = Session(demo_result)
        with pytest.raises(ValueError):
            session.compile_many(["int a; a = 1;"], names=["x", "y"])

    def test_compile_accepts_ir_program(self, tms_result):
        from repro.dspstone import kernel_program

        session = Session(tms_result)
        program = kernel_program("fir")
        assert session.compile(program).code_size == session.compile_program(program).code_size

    def test_compile_kernel(self, tms_result):
        session = Session(tms_result)
        compiled = session.compile_kernel("real_update")
        assert compiled.code_size > 0

    def test_reconfigured_shares_retarget_result(self, tms_result):
        session = Session(tms_result)
        restricted = session.reconfigured(PipelineConfig.preset("no-chained"))
        assert restricted.retarget_result is session.retarget_result
        full_size = session.compile_kernel("real_update").code_size
        restricted_size = restricted.compile_kernel("real_update").code_size
        assert restricted_size > full_size

    def test_repeated_compiles_are_independent(self, demo_result):
        """The pipeline must never corrupt shared selection state: mutating
        one compile's output does not change the next compile."""
        session = Session(demo_result)
        source = "int a, b, c, d; d = c + a * b;"
        first = session.compile(source)
        baseline = (first.code_size, first.operation_count)
        # vandalise the first result's statement codes and instance lists
        for code in first.statement_codes:
            code.instances.clear()
        second = session.compile(source)
        assert (second.code_size, second.operation_count) == baseline

    def test_restricted_selector_memoized_across_compilers(self, tms_result):
        options = CompilerOptions(allow_chained=False)
        first = RecordCompiler(tms_result, options)
        second = RecordCompiler(tms_result, CompilerOptions(allow_chained=False))
        assert first._selector is second._selector
        assert restricted_selector(tms_result, allow_chained=False) is first._selector
        # the unrestricted selector is the retarget result's own
        assert restricted_selector(tms_result) is tms_result.selector

    def test_summary_reports_passes(self, demo_result):
        summary = Session(demo_result).summary()
        assert summary["processor"] == "demo"
        assert "select" in summary["passes"]


# ---------------------------------------------------------------------------
# Retarget cache
# ---------------------------------------------------------------------------


class TestRetargetCache:
    HDL = None  # filled lazily from the demo model

    @pytest.fixture()
    def demo_hdl(self):
        return target_hdl_source("demo")

    def test_cold_miss_then_warm_hit(self, tmp_path, demo_hdl):
        cache = RetargetCache(directory=tmp_path)
        result, hit = cache.get_or_retarget(demo_hdl, generate_matcher=False)
        assert not hit
        again, hit = cache.get_or_retarget(demo_hdl, generate_matcher=False)
        assert hit
        assert again is result
        assert cache.hits == 1 and cache.misses == 1

    def test_disk_persistence_across_instances(self, tmp_path, demo_hdl):
        first = RetargetCache(directory=tmp_path)
        original, hit = first.get_or_retarget(demo_hdl, generate_matcher=False)
        assert not hit
        second = RetargetCache(directory=tmp_path)
        restored, hit = second.get_or_retarget(demo_hdl, generate_matcher=False)
        assert hit
        assert restored is not original  # unpickled copy
        assert restored.processor == original.processor
        assert restored.template_count == original.template_count
        # the restored selector must actually work
        session = Session(restored)
        assert session.compile("int a, b, d; d = a + b;").code_size > 0

    def test_hdl_change_invalidates(self, tmp_path, demo_hdl):
        cache = RetargetCache(directory=tmp_path)
        cache.get_or_retarget(demo_hdl, generate_matcher=False)
        modified = demo_hdl + "\n-- a trailing comment\n"
        _result, hit = cache.get_or_retarget(modified, generate_matcher=False)
        assert not hit
        assert cache.misses == 2

    def test_option_change_invalidates(self, demo_hdl):
        base = retarget_fingerprint(demo_hdl)
        assert retarget_fingerprint(demo_hdl, max_depth=5) != base
        assert retarget_fingerprint(demo_hdl + " ") != base
        from repro.expansion import ExpansionOptions

        no_expansion = ExpansionOptions(use_commutativity=False, use_rewrite_rules=False)
        assert retarget_fingerprint(demo_hdl, expansion=no_expansion) != base

    def test_matcher_regenerated_on_hit(self, tmp_path, demo_hdl):
        writer = RetargetCache(directory=tmp_path)
        writer.get_or_retarget(demo_hdl, generate_matcher=False)
        reader = RetargetCache(directory=tmp_path)
        result, hit = reader.get_or_retarget(demo_hdl, generate_matcher=True)
        assert hit
        assert result.matcher_module is not None
        assert result.matcher_module.PROCESSOR == "demo"

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path, demo_hdl):
        cache = RetargetCache(directory=tmp_path)
        cache.get_or_retarget(demo_hdl, generate_matcher=False)
        for entry in tmp_path.iterdir():
            entry.write_bytes(b"not a pickle")
        fresh = RetargetCache(directory=tmp_path)
        _result, hit = fresh.get_or_retarget(demo_hdl, generate_matcher=False)
        assert not hit

    def test_truncated_pickle_falls_back_and_overwrites(self, tmp_path, demo_hdl):
        """Regression: a torn/truncated entry must re-retarget AND leave a
        valid entry behind, never raise."""
        cache = RetargetCache(directory=tmp_path)
        result, _hit = cache.get_or_retarget(demo_hdl, generate_matcher=False)
        (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".pkl"]
        healthy = entry.read_bytes()
        entry.write_bytes(healthy[: len(healthy) // 2])  # truncate mid-stream

        fresh = RetargetCache(directory=tmp_path)
        recovered, hit = fresh.get_or_retarget(demo_hdl, generate_matcher=False)
        assert not hit  # fell back to re-retargeting
        assert recovered.processor == result.processor
        # the bad entry was overwritten with a loadable one
        reader = RetargetCache(directory=tmp_path)
        _again, hit = reader.get_or_retarget(demo_hdl, generate_matcher=False)
        assert hit

    def test_wrong_type_pickle_falls_back_and_overwrites(self, tmp_path, demo_hdl):
        """An entry that unpickles into the wrong type (format skew) is
        treated exactly like corruption."""
        cache = RetargetCache(directory=tmp_path)
        cache.get_or_retarget(demo_hdl, generate_matcher=False)
        (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".pkl"]
        entry.write_bytes(pickle.dumps({"not": "a RetargetResult"}))

        fresh = RetargetCache(directory=tmp_path)
        _result, hit = fresh.get_or_retarget(demo_hdl, generate_matcher=False)
        assert not hit
        reader = RetargetCache(directory=tmp_path)
        _again, hit = reader.get_or_retarget(demo_hdl, generate_matcher=False)
        assert hit

    def test_corrupt_entry_get_never_raises(self, tmp_path, demo_hdl):
        cache = RetargetCache(directory=tmp_path)
        cache.get_or_retarget(demo_hdl, generate_matcher=False)
        (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".pkl"]
        key = entry.stem
        entry.write_bytes(b"\x80")  # truncated pickle header
        fresh = RetargetCache(directory=tmp_path)
        assert fresh.get(key) is None  # miss, not an exception

    def test_memory_only_cache(self, demo_hdl):
        cache = RetargetCache(directory=False)
        assert cache.directory is None
        cache.get_or_retarget(demo_hdl, generate_matcher=False)
        _result, hit = cache.get_or_retarget(demo_hdl, generate_matcher=False)
        assert hit
        assert cache.stats()["disk_entries"] == 0

    def test_clear(self, tmp_path, demo_hdl):
        cache = RetargetCache(directory=tmp_path)
        cache.get_or_retarget(demo_hdl, generate_matcher=False)
        assert cache.clear() == 1
        _result, hit = cache.get_or_retarget(demo_hdl, generate_matcher=False)
        assert not hit

    def test_retarget_result_pickle_drops_private_state(self, demo_result):
        restricted_selector(demo_result, allow_chained=False)
        assert "_restricted_selectors" in demo_result.__dict__
        clone = pickle.loads(pickle.dumps(demo_result))
        assert "_restricted_selectors" not in clone.__dict__
        assert clone.matcher_module is None


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_hdl_errors_are_repro_errors(self):
        from repro.hdl import parse_processor

        with pytest.raises(ReproError) as excinfo:
            parse_processor("processor broken\n$")
        assert isinstance(excinfo.value, HdlParseError)
        assert excinfo.value.phase == "hdl"
        assert excinfo.value.location.line >= 1

    def test_frontend_errors_are_repro_errors(self):
        from repro.frontend import lower_to_program

        with pytest.raises(ReproError) as excinfo:
            lower_to_program("int a; a = $;")
        assert isinstance(excinfo.value, SourceSyntaxError)
        with pytest.raises(ReproError) as excinfo:
            lower_to_program("int a; a = undeclared;")
        assert isinstance(excinfo.value, LoweringError)
        assert excinfo.value.phase == "frontend"

    def test_selection_errors_are_repro_errors(self, demo_result):
        from repro.codegen.selection import CodeGenerationError

        session = Session(demo_result)
        with pytest.raises(ReproError) as excinfo:
            session.compile("int a, b, c; c = a / b;")  # demo has no divider
        assert isinstance(excinfo.value, CodeGenerationError)

    def test_source_location_formatting(self):
        location = SourceLocation(line=3, column=7, filename="chip.hdl")
        assert str(location) == "chip.hdl, line 3, column 7"
        assert not SourceLocation()

    def test_error_report(self):
        error = TargetError("unknown target 'z80'")
        report = error_report(error)
        assert "TargetError" in report and "[target]" in report and "z80" in report


# ---------------------------------------------------------------------------
# Program naming through compile / compile_many
# ---------------------------------------------------------------------------


class TestSessionNaming:
    """Regression tests: ``name=`` must apply to Program sources too."""

    def test_source_text_default_name(self, demo_result):
        assert Session(demo_result).compile("int a, b; b = a;").name == "program"

    def test_source_text_explicit_name(self, demo_result):
        compiled = Session(demo_result).compile("int a, b; b = a;", name="tiny")
        assert compiled.name == "tiny"

    def test_program_keeps_its_own_name_by_default(self, demo_result):
        program = kernel_program("real_update")
        compiled = Session(demo_result).compile(program)
        assert compiled.name == "real_update"

    def test_program_rename_does_not_mutate_the_caller(self, demo_result):
        program = kernel_program("real_update")
        compiled = Session(demo_result).compile(program, name="renamed")
        assert compiled.name == "renamed"
        assert compiled.program.name == "renamed"
        assert program.name == "real_update"  # caller's object untouched
        # renamed compilation is otherwise identical
        baseline = Session(demo_result).compile(program)
        assert compiled.code_size == baseline.code_size

    def test_compile_many_default_names_do_not_desync(self, demo_result):
        program = kernel_program("dot_product")
        batch = Session(demo_result).compile_many([program, "int a, b; b = a;"])
        assert [r.name for r in batch] == ["dot_product", "program1"]

    def test_compile_many_explicit_names_apply_to_programs(self, demo_result):
        program = kernel_program("dot_product")
        batch = Session(demo_result).compile_many(
            [program, "int a, b; b = a;"], names=["first", "second"]
        )
        assert [r.name for r in batch] == ["first", "second"]
        assert program.name == "dot_product"

    def test_compile_many_name_count_mismatch_raises(self, demo_result):
        with pytest.raises(ValueError):
            Session(demo_result).compile_many(["int a, b; b = a;"], names=["a", "b"])

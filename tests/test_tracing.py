"""Integration tests for pipeline tracing (golden trace shape).

A traced compile must export a Chrome trace whose per-pass spans agree
with the independently measured ``pass_timings``, whose per-block spans
match the program's CFG, and which survives the result round-trip and
the service envelope.
"""

import json

from repro.obs.trace import Tracer, use_tracer
from repro.service import CompileRequest, CompileService
from repro.targets import target_hdl_source
from repro.toolchain import RetargetCache, Toolchain


def _complete(trace):
    return [e for e in trace["traceEvents"] if e.get("ph") == "X"]


def _spans_named(trace, name):
    return [e for e in _complete(trace) if e["name"] == name]


class TestGoldenTraceShape:
    def test_pass_spans_agree_with_pass_timings(self):
        session = Toolchain(cache=RetargetCache(directory=False)).session("demo")
        tracer = Tracer(name="test")
        result = session.compile_program(_kernel("fir_loop"), tracer=tracer)
        trace = result.trace
        assert trace is not None
        events = _complete(trace)
        assert _spans_named(trace, "compile"), "missing root compile span"
        for name, seconds in result.pass_timings.items():
            spans = _spans_named(trace, "pass:%s" % name)
            assert len(spans) == 1, "expected one span for pass %r" % name
            span_s = spans[0]["dur"] / 1e6
            # the pass timing is measured just outside the span; allow
            # 10% + 2ms of slack for the span-bookkeeping delta
            assert abs(span_s - seconds) <= 0.10 * seconds + 0.002, (
                "pass %s: span %.6fs vs timing %.6fs" % (name, span_s, seconds)
            )
        # the root span covers every pass span
        root = _spans_named(trace, "compile")[0]
        for event in events:
            assert event["ts"] >= root["ts"] - 1
            assert event["ts"] + event["dur"] <= root["ts"] + root["dur"] + 1

    def test_per_block_spans_match_the_cfg(self):
        session = Toolchain(cache=RetargetCache(directory=False)).session("demo")
        tracer = Tracer(name="test")
        result = session.compile_program(_kernel("fir_loop"), tracer=tracer)
        select_blocks = _spans_named(result.trace, "select:block")
        schedule_blocks = _spans_named(result.trace, "schedule:block")
        assert len(select_blocks) >= 2, "loop kernel must select multiple blocks"
        assert len(select_blocks) == len(schedule_blocks)
        # every block span is parented under its pass span, whose own
        # "blocks" attribute counts them
        select_pass = _spans_named(result.trace, "pass:select")[0]
        assert select_pass["args"]["blocks"] == len(select_blocks)
        for span in select_blocks:
            assert span["args"]["parent_id"] == select_pass["args"]["span_id"]

    def test_pass_spans_carry_metric_attributes(self):
        session = Toolchain(cache=RetargetCache(directory=False)).session("demo")
        tracer = Tracer(name="test")
        result = session.compile_program(_kernel("fir"), tracer=tracer)
        select = _spans_named(result.trace, "pass:select")[0]
        assert select["args"]["nodes_labelled"] > 0
        assert 0.0 <= select["args"]["memo_hit_rate"] <= 1.0
        opt = _spans_named(result.trace, "pass:opt")[0]
        assert "nodes_before" in opt["args"]
        compact = _spans_named(result.trace, "pass:compact")[0]
        assert compact["args"]["words"] == result.code_size

    def test_retarget_phases_traced_on_cold_cache(self):
        tracer = Tracer(name="test")
        with use_tracer(tracer):
            Toolchain(cache=RetargetCache(directory=False)).session("demo")
        trace = tracer.to_chrome_trace()
        names = {e["name"] for e in _complete(trace)}
        for phase in (
            "retarget:hdl_frontend",
            "retarget:netlist",
            "retarget:extraction",
            "retarget:expansion",
            "retarget:grammar",
            "retarget:tables",
            "tables:build",
        ):
            assert phase in names, "missing %s (got %s)" % (phase, sorted(names))
        extraction = _spans_named(trace, "retarget:extraction")[0]
        assert extraction["args"]["templates"] > 0

    def test_retarget_cache_hits_and_misses_are_instants(self):
        cache = RetargetCache(directory=False)
        hdl = target_hdl_source("demo")
        tracer = Tracer(name="test")
        with use_tracer(tracer):
            _result, hit_first = cache.get_or_retarget(hdl)
            _result, hit_second = cache.get_or_retarget(hdl)
        assert (hit_first, hit_second) == (False, True)
        trace = tracer.to_chrome_trace()
        instants = [
            e["name"] for e in trace["traceEvents"] if e.get("ph") == "i"
        ]
        assert instants.count("retarget_cache:miss") == 1
        assert instants.count("retarget_cache:hit") == 1

    def test_untraced_compile_has_no_trace(self):
        session = Toolchain(cache=RetargetCache(directory=False)).session("demo")
        result = session.compile_program(_kernel("fir"))
        assert result.trace is None
        assert "trace" not in result.to_dict()


class TestTraceRoundTrip:
    def test_result_round_trips_the_trace(self):
        from repro.toolchain.results import CompilationResult

        session = Toolchain(cache=RetargetCache(directory=False)).session("demo")
        result = session.compile_program(_kernel("fir"), tracer=Tracer(name="t"))
        data = json.loads(json.dumps(result.to_dict()))
        restored = CompilationResult.from_dict(data)
        assert restored.trace == result.trace
        assert restored.trace["traceEvents"]

    def test_service_embeds_the_trace_for_traced_requests(self):
        service = CompileService()
        traced = service.run(
            CompileRequest(
                target="demo", kernel="fir", request_id="rid-t", trace=True
            )
        )
        plain = service.run(
            CompileRequest(target="demo", kernel="fir", request_id="rid-p")
        )
        assert traced.ok and plain.ok
        assert traced.result.trace is not None
        assert traced.result.trace["otherData"]["request_id"] == "rid-t"
        envelope = traced.to_dict()
        assert envelope["result"]["trace"]["traceEvents"]
        assert plain.result.trace is None
        assert "trace" not in plain.to_dict()["result"]

    def test_trace_request_field_round_trips(self):
        request = CompileRequest.from_dict(
            {"target": "demo", "kernel": "fir", "trace": True}
        )
        assert request.trace is True
        assert request.to_dict()["trace"] is True
        assert (
            CompileRequest.from_dict({"target": "demo", "kernel": "fir"}).trace
            is False
        )


def _kernel(name):
    from repro.dspstone import kernel_program

    return kernel_program(name)

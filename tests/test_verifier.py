"""The pipeline-wide static verifier.

Three layers of coverage:

* unit tests for each check (CFG well-formedness, optimizer alias/CSE
  discipline, word-level dependence checks, spill-metric honesty);
* regression replays: the verifier statically re-detects all three
  historical backend bugs (the spill-reload clobber, the scheduler's
  WAR hoist, an unmatched spill reload) from the instance stream alone,
  with structured findings -- and stays silent on the fixed outputs and
  on corruption the storage-faithful simulator proves unobservable;
* pipeline integration: ``PipelineConfig.verify`` runs one check batch
  around every pass, reports its cost in ``CompileMetrics`` and
  surfaces through the CLI and the compile service.
"""

import pytest

from repro.analysis import (
    PipelineVerifier,
    VerificationError,
    check_cfg,
    check_instance_stream,
    check_optimized_program,
    check_spill_metric,
    check_words,
    derive_dependence_edges,
)
from repro.analysis.verify import snapshot_program_ids
from repro.codegen.compaction import InstructionWord
from repro.codegen.selection import BlockCode, RTInstance, StatementCode
from repro.codegen.spill import insert_spills
from repro.ir.expr import Const, Op, VarRef
from repro.ir.program import BasicBlock, CBranch, Jump, Program, Statement
from repro.selector.subject import SubjectNode

REGISTERS = {"R", "ACC"}


def _compute(op, result_id, result_storage, operand_specs, defines=None):
    """An RT instance computing ``op`` over (value id, storage) operands."""
    operand_nodes = [SubjectNode(storage) for _id, storage in operand_specs]
    node = SubjectNode(op, list(operand_nodes))
    instance = RTInstance(
        kind="rt",
        result_id=result_id,
        result_storage=result_storage,
        operands=list(operand_specs),
        node=node,
        operand_nodes=operand_nodes,
    )
    if defines is not None:
        instance.defines_variable = defines
    return instance


def _spill_store(value_id, register, memory="DMEM"):
    return RTInstance(
        kind="spill_store",
        result_id=value_id,
        result_storage=memory,
        operands=[(value_id, register)],
    )


def _spill_reload(value_id, register, memory="DMEM"):
    return RTInstance(
        kind="spill_reload",
        result_id=value_id,
        result_storage=register,
        operands=[(value_id, memory)],
    )


def _errors(findings):
    return [f for f in findings if f.severity == "error"]


# ---------------------------------------------------------------------------
# CFG well-formedness
# ---------------------------------------------------------------------------


def _branching_program():
    cond = Op("lt", (VarRef("a"), Const(4)))
    return Program(
        "p",
        [
            BasicBlock("entry", [Statement("a", Const(1))],
                       CBranch(cond, "body", "done")),
            BasicBlock("body", [Statement("a", VarRef("a"))], Jump("entry")),
            BasicBlock("done", [Statement("b", VarRef("a"))]),
        ],
        scalars=["a", "b"],
    )


class TestCheckCfg:
    def test_well_formed_program_is_clean(self):
        assert check_cfg(_branching_program()) == []

    def test_empty_program_is_an_error(self):
        findings = check_cfg(Program("empty", []))
        assert [f.check for f in _errors(findings)] == ["cfg"]

    def test_duplicate_block_names(self):
        program = _branching_program()
        program.blocks.append(BasicBlock("entry", []))
        findings = _errors(check_cfg(program))
        assert any("duplicate" in f.message for f in findings)

    def test_dangling_branch_target(self):
        program = _branching_program()
        program.blocks[1] = BasicBlock(
            "body", [], Jump("nowhere")
        )
        findings = _errors(check_cfg(program))
        assert any("'nowhere'" in f.message for f in findings)
        assert findings[0].where == "body"

    def test_unknown_entry(self):
        program = _branching_program()
        program.entry = "missing"
        findings = _errors(check_cfg(program))
        assert any("entry" in f.message for f in findings)

    def test_unreachable_block_is_a_warning_not_an_error(self):
        program = _branching_program()
        program.blocks.append(BasicBlock("orphan", []))
        findings = check_cfg(program)
        assert _errors(findings) == []
        assert any(
            f.severity == "warning" and f.where == "orphan" for f in findings
        )

    def test_program_that_cannot_halt_is_a_warning(self):
        program = Program(
            "spin",
            [BasicBlock("entry", [], Jump("entry"))],
            scalars=[],
        )
        findings = check_cfg(program)
        assert _errors(findings) == []
        assert any("cannot halt" in f.message for f in findings)


# ---------------------------------------------------------------------------
# Optimizer discipline
# ---------------------------------------------------------------------------


class TestCheckOptimizedProgram:
    def test_fresh_program_is_clean(self):
        assert check_optimized_program(_branching_program()) == []

    def test_expression_shared_across_statements(self):
        shared = Op("add", (VarRef("a"), Const(1)))
        program = Program(
            "aliased",
            [BasicBlock("entry", [Statement("x", shared),
                                  Statement("y", shared)])],
            scalars=["a", "x", "y"],
        )
        findings = _errors(check_optimized_program(program))
        assert any(f.check == "alias" for f in findings)
        assert any("entry[0]" in f.message for f in findings)

    def test_output_aliasing_the_input_program(self):
        program = _branching_program()
        before = snapshot_program_ids(program)
        # "Optimizing" into the very same objects violates the
        # pass-owns-its-state contract.
        findings = _errors(check_optimized_program(program, before_ids=before))
        assert any("aliases its input" in f.message for f in findings)

    def test_reserved_temp_read_before_assignment(self):
        program = Program(
            "cse",
            [BasicBlock("entry", [Statement("x", VarRef("__cse0")),
                                  Statement("__cse0", Const(1))])],
            scalars=["x", "__cse0"],
        )
        findings = _errors(check_optimized_program(program))
        assert any(f.check == "cse" and "__cse0" in f.message for f in findings)

    def test_reserved_temp_assigned_first_is_clean(self):
        program = Program(
            "cse",
            [BasicBlock("entry", [Statement("__cse0", Const(1)),
                                  Statement("x", VarRef("__cse0"))])],
            scalars=["x", "__cse0"],
        )
        assert check_optimized_program(program) == []


# ---------------------------------------------------------------------------
# Machine-walk regressions: the three historical backend bugs
# ---------------------------------------------------------------------------


class TestSpillClobberDetection:
    """The spill-reload clobber (PR 5, bug 1): a reload overwrote a
    register still holding a live, never-spilled temporary."""

    def _sequence(self):
        i0 = _compute("add", "tmp:0", "R",
                      [("var:a", "DMEM"), ("const:0", "CONST")])
        i1 = _compute("add", "tmp:1", "R",
                      [("var:b", "DMEM"), ("const:0", "CONST")])
        i2 = _compute("add", "tmp:2", "ACC", [("tmp:0", "R"), ("var:c", "DMEM")])
        i3 = _compute("add", "tmp:3", "ACC", [("tmp:1", "R"), ("tmp:2", "ACC")],
                      defines="out")
        return [i0, i1, i2, i3]

    def test_pre_fix_stream_is_flagged(self):
        i0, i1, i2, i3 = self._sequence()
        pre_fix = [i0, _spill_store("tmp:0", "R"), i1,
                   _spill_reload("tmp:0", "R"), i2, i3]
        findings = _errors(check_instance_stream(pre_fix, REGISTERS))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.check == "race"
        assert "'out'" in finding.message
        assert "holds tmp:0" in finding.message

    def test_fixed_spill_output_is_clean(self):
        fixed = insert_spills(self._sequence(), spill_storage="DMEM")
        assert check_instance_stream(fixed, REGISTERS) == []

    def test_unobservable_corruption_is_not_flagged(self):
        """Stale register contents that never reach a committed variable
        are exactly what the storage-faithful simulator proves harmless
        -- the verifier must stay observability-aware and keep quiet."""
        i0, i1, i2, _i3 = self._sequence()
        pre_fix_no_commit = [i0, _spill_store("tmp:0", "R"), i1,
                             _spill_reload("tmp:0", "R"), i2]
        assert check_instance_stream(pre_fix_no_commit, REGISTERS) == []


class TestWarHoistDetection:
    """The scheduler WAR hoist (PR 5, bug 2): a register write scheduled
    ahead of an earlier-in-program-order read of that register."""

    def _sequence(self):
        i0 = _compute("add", "tmp:0", "ACC",
                      [("var:a", "DMEM"), ("const:0", "CONST")])
        i1 = _compute("add", "tmp:1", "ACC", [("var:x", "R"), ("tmp:0", "ACC")])
        i2 = _compute("add", "tmp:2", "R",
                      [("var:b", "DMEM"), ("const:0", "CONST")])
        i3 = _compute("add", "tmp:3", "ACC", [("tmp:1", "ACC"), ("tmp:2", "R")],
                      defines="out")
        return [i0, i1, i2, i3]

    def test_pre_fix_order_is_flagged(self):
        i0, i1, i2, i3 = self._sequence()
        findings = _errors(check_instance_stream([i0, i2, i1, i3], REGISTERS))
        assert len(findings) == 1
        assert findings[0].check == "race"
        assert "var:x" in findings[0].message
        assert "holds tmp:2" in findings[0].message

    def test_program_order_is_clean(self):
        assert check_instance_stream(self._sequence(), REGISTERS) == []


class TestUnmatchedReloadDetection:
    """Bug 3: a ``spill_reload`` with no preceding matching store reads
    garbage from spill memory."""

    def test_reload_without_store_is_flagged(self):
        stream = [
            _spill_reload("tmp:0", "R"),
            _compute("add", "tmp:1", "ACC", [("tmp:0", "R")], defines="out"),
        ]
        findings = _errors(check_instance_stream(stream, REGISTERS))
        assert any(
            f.check == "spill" and "not preceded by a matching spill_store"
            in f.message
            for f in findings
        )

    def test_store_then_reload_is_clean(self):
        stream = [
            _compute("add", "tmp:0", "R", [("var:a", "DMEM")]),
            _spill_store("tmp:0", "R"),
            _spill_reload("tmp:0", "R"),
            _compute("add", "tmp:1", "ACC", [("tmp:0", "R")], defines="out"),
        ]
        assert check_instance_stream(stream, REGISTERS) == []


# ---------------------------------------------------------------------------
# Compaction: word-level dependence checks
# ---------------------------------------------------------------------------


def _dependent_pair():
    producer = _compute("add", "tmp:0", "R", [("var:a", "DMEM")])
    consumer = _compute("add", "tmp:1", "ACC", [("tmp:0", "R")], defines="out")
    return producer, consumer


def _one_block(instances):
    code = StatementCode(statement=None, cost=0, instances=list(instances))
    return [BlockCode(name="entry", codes=[code])]


class TestCheckWords:
    def test_in_order_words_are_clean(self):
        producer, consumer = _dependent_pair()
        words = [InstructionWord(instances=[producer]),
                 InstructionWord(instances=[consumer])]
        assert check_words(_one_block([producer, consumer]), words) == []

    def test_raw_violation_across_words(self):
        producer, consumer = _dependent_pair()
        words = [InstructionWord(instances=[consumer]),
                 InstructionWord(instances=[producer])]
        findings = _errors(
            check_words(_one_block([producer, consumer]), words)
        )
        assert any("RAW" in f.message for f in findings)

    def test_produce_and_consume_in_one_word(self):
        producer, consumer = _dependent_pair()
        words = [InstructionWord(instances=[producer, consumer])]
        findings = _errors(
            check_words(_one_block([producer, consumer]), words)
        )
        assert any("produces and consumes" in f.message for f in findings)

    def test_two_writers_of_one_storage_in_one_word(self):
        a = _compute("add", "tmp:0", "R", [("var:a", "DMEM")])
        b = _compute("add", "tmp:1", "R", [("var:b", "DMEM")])
        words = [InstructionWord(instances=[a, b])]
        findings = _errors(check_words(_one_block([a, b]), words))
        assert any("write R in the same word" in f.message for f in findings)

    def test_instance_missing_from_words(self):
        producer, consumer = _dependent_pair()
        words = [InstructionWord(instances=[producer])]
        findings = _errors(
            check_words(_one_block([producer, consumer]), words)
        )
        assert any("missing from the compacted words" in f.message
                   for f in findings)

    def test_instance_packed_twice(self):
        producer, consumer = _dependent_pair()
        words = [InstructionWord(instances=[producer]),
                 InstructionWord(instances=[producer]),
                 InstructionWord(instances=[consumer])]
        findings = _errors(
            check_words(_one_block([producer, consumer]), words)
        )
        assert any("packed into two words" in f.message for f in findings)

    def test_multi_block_needs_labels(self):
        producer, consumer = _dependent_pair()
        blocks = [
            BlockCode(name="b0", codes=[
                StatementCode(statement=None, cost=0, instances=[producer])
            ]),
            BlockCode(name="b1", codes=[
                StatementCode(statement=None, cost=0, instances=[consumer])
            ]),
        ]
        words = [InstructionWord(instances=[producer], label="b0"),
                 InstructionWord(instances=[consumer])]
        findings = _errors(check_words(blocks, words))
        assert [f.where for f in findings] == ["b1"]
        assert "no labelled word" in findings[0].message


class TestDeriveDependenceEdges:
    def test_raw_war_waw_edges(self):
        a = _compute("add", "tmp:0", "R", [("var:a", "DMEM")])
        b = _compute("add", "tmp:1", "ACC", [("tmp:0", "R")])
        c = _compute("add", "tmp:2", "R", [("var:b", "DMEM")])
        edges = derive_dependence_edges([a, b, c])
        kinds = {(e.kind, e.earlier, e.later) for e in edges}
        assert ("raw", 0, 1) in kinds     # b reads tmp:0
        assert ("war", 1, 2) in kinds     # c overwrites R after b's read
        assert ("waw", 0, 2) in kinds     # c overwrites R after a's write


class TestSpillMetric:
    def test_honest_count_is_clean(self):
        stream = [_spill_store("tmp:0", "R"), _spill_reload("tmp:0", "R")]
        assert check_spill_metric(stream, reported=2) == []

    def test_mismatch_is_an_error(self):
        stream = [_spill_store("tmp:0", "R")]
        findings = _errors(check_spill_metric(stream, reported=0))
        assert len(findings) == 1
        assert findings[0].check == "metric"


# ---------------------------------------------------------------------------
# The pipeline hook
# ---------------------------------------------------------------------------


class TestPipelineVerifierHook:
    def test_spill_hook_raises_structured_error(self):
        from repro.toolchain.passes import CompilationState

        i0 = _compute("add", "tmp:0", "R", [("var:a", "DMEM")])
        i1 = _compute("add", "tmp:1", "R", [("var:b", "DMEM")])
        i2 = _compute("add", "tmp:2", "ACC", [("tmp:0", "R")], defines="out")
        state = CompilationState(program=_branching_program())
        state.statement_codes = [
            StatementCode(statement=None, cost=0, instances=[i0, i1, i2])
        ]
        verifier = PipelineVerifier(registers=REGISTERS)
        with pytest.raises(VerificationError) as excinfo:
            verifier.after_pass("spill", state, context=None)
        error = excinfo.value
        assert error.after == "spill"
        assert error.phase == "verify"
        assert any(f.check == "race" for f in error.findings)
        assert "tmp:0" in str(error)

    def test_warnings_flow_into_diagnostics_not_errors(self):
        from repro.toolchain.passes import CompilationState

        program = _branching_program()
        program.blocks.append(BasicBlock("orphan", []))
        state = CompilationState(program=program)
        verifier = PipelineVerifier(registers=REGISTERS)
        verifier.before_pass("opt", state, context=None)
        assert verifier.checks_run == 1
        assert any(
            d.severity == "warning" and "unreachable" in d.message
            for d in state.diagnostics
        )


class TestPipelineIntegration:
    def test_verify_runs_one_batch_per_stage(self, tms_result):
        from repro.dspstone import kernel_program
        from repro.toolchain.passes import PipelineConfig
        from repro.toolchain.session import Session

        session = Session(tms_result, config=PipelineConfig(verify=True))
        result = session.compile(kernel_program("real_update"))
        # input + opt + select + schedule + spill + compact.
        assert result.metrics.verify_checks == 6
        assert result.metrics.verify_time_s > 0.0

    def test_verify_off_reports_zero_checks(self, tms_result):
        from repro.dspstone import kernel_program
        from repro.toolchain.passes import PipelineConfig
        from repro.toolchain.session import Session

        session = Session(tms_result, config=PipelineConfig(verify=False))
        result = session.compile(kernel_program("real_update"))
        assert result.metrics.verify_checks == 0
        assert result.metrics.verify_time_s == 0.0

    def test_verified_loop_kernels_on_every_dsp_target(self, retarget_results):
        from repro.dspstone import kernel_program, loop_kernel_names
        from repro.toolchain.passes import PipelineConfig
        from repro.toolchain.session import Session

        for target in ("demo", "ref", "tms320c25"):
            session = Session(
                retarget_results[target], config=PipelineConfig(verify=True)
            )
            for name in loop_kernel_names():
                result = session.compile(kernel_program(name))
                assert result.metrics.verify_checks == 6, (target, name)


class TestCliAndService:
    def test_cli_compile_with_verify_and_timings(self, capsys):
        from repro.cli import main

        exit_code = main([
            "compile", "tms320c25", "--kernel", "real_update",
            "--verify", "--timings",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "verify" in out

    def test_request_verify_override_round_trips(self):
        from repro.service.api import CompileRequest

        request = CompileRequest.from_dict(
            {"target": "demo", "kernel": "fir", "verify": True}
        )
        assert request.resolved_config().verify is True
        assert CompileRequest.from_dict(request.to_dict()) == request

        request = CompileRequest.from_dict(
            {"target": "demo", "kernel": "fir", "verify": False}
        )
        assert request.resolved_config().verify is False

    def test_request_verify_must_be_boolean(self):
        from repro.service.api import CompileRequest, RequestError

        with pytest.raises(RequestError):
            CompileRequest.from_dict(
                {"target": "demo", "kernel": "fir", "verify": "yes"}
            )


class TestVerifyOverhead:
    def test_verify_cost_is_bounded(self, tms_result):
        """Self-reported verify time stays a fraction of compile time.

        The acceptance benchmark (scripts measure < 25% wall-clock added
        on loop kernels) is too noise-sensitive for CI; here we bound the
        per-compile accounting at a generous 100% so a structural
        regression (e.g. an accidentally quadratic check) still fails.
        """
        from repro.dspstone import kernel_program, loop_kernel_names
        from repro.toolchain.passes import PipelineConfig
        from repro.toolchain.session import Session

        session = Session(tms_result, config=PipelineConfig(verify=True))
        programs = [kernel_program(name) for name in loop_kernel_names()]
        for program in programs:  # warm every cache first
            session.compile(program)
        import time

        verify = 0.0
        started = time.perf_counter()
        for _ in range(3):
            for program in programs:
                verify += session.compile(program).metrics.verify_time_s
        total = time.perf_counter() - started
        assert verify < (total - verify)
